"""Execution-engine benchmarks: cold vs cached, serial vs parallel.

These demonstrate the acceptance properties of the engine on the real
experiment paths (not toy jobs): a warm result cache makes a rerun at
least 5x faster, a process pool produces byte-identical results to the
serial path, the dependency graph overlaps independent stages that a
barriered schedule serializes, and a cold ``repro worker join`` worker
answers >90% of its work from the coordinator's shared cache tier.
Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see
the speedup reports).

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) shrinks the workloads
and only sanity-checks the ratios.  Set
``REPRO_BENCH_ENGINE_JSON=<path>`` to emit a machine-readable
``BENCH_ENGINE.json`` summary (CI uploads it with the obs artifacts).
"""

import json
import os
import subprocess
import sys
import time

import pytest

from benchmarks.conftest import print_result
from repro.engine import Engine
from repro.fab.process import FC4_WAFER
from repro.fab.yield_model import run_yield_study
from repro.netlist.cores import build_flexicore4


@pytest.fixture(scope="module")
def netlist():
    return build_flexicore4()


class TestYieldStudyCache:
    def test_cached_rerun_is_5x_faster(self, netlist, tmp_path):
        """Acceptance: the second invocation rides the cache."""

        def study(engine):
            return run_yield_study(
                netlist, FC4_WAFER, wafers=8, seed=2022, engine=engine
            )

        started = time.perf_counter()
        cold = study(Engine(jobs=1, cache=tmp_path))
        cold_s = time.perf_counter() - started

        warm_engine = Engine(jobs=1, cache=tmp_path)
        started = time.perf_counter()
        warm = study(warm_engine)
        warm_s = time.perf_counter() - started

        assert warm == cold
        assert warm_engine.metrics.cache_hits == 8
        assert cold_s >= 5 * warm_s, (cold_s, warm_s)
        print_result(
            "Engine cache speedup (yield study, 8 wafers)",
            f"cold  {cold_s * 1e3:8.1f} ms\n"
            f"warm  {warm_s * 1e3:8.1f} ms\n"
            f"ratio {cold_s / warm_s:8.1f}x (acceptance: >= 5x)",
        )

    def test_warm_cache_bench(self, netlist, tmp_path, benchmark):
        """Steady-state cached lookup cost for the full study."""
        engine = Engine(jobs=1, cache=tmp_path)
        run_yield_study(netlist, FC4_WAFER, wafers=8, seed=2022,
                        engine=engine)

        summary = benchmark(
            lambda: run_yield_study(
                netlist, FC4_WAFER, wafers=8, seed=2022,
                engine=Engine(jobs=1, cache=tmp_path),
            )
        )
        assert 0.6 < summary[4.5]["inclusion"] <= 1.0


class TestYieldStudyParallel:
    def test_parallel_bench(self, netlist, benchmark):
        """Process-pool fan-out of the wafer Monte Carlo."""
        serial = run_yield_study(
            netlist, FC4_WAFER, wafers=8, seed=2022, engine=Engine(jobs=1)
        )
        summary = benchmark.pedantic(
            lambda: run_yield_study(
                netlist, FC4_WAFER, wafers=8, seed=2022,
                engine=Engine(jobs=4),
            ),
            rounds=2, iterations=1,
        )
        assert summary == serial


SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


@pytest.fixture(scope="module")
def engine_report():
    """Accumulates the BENCH_ENGINE.json artifact across tests."""
    payload = {}
    yield payload
    artifact = os.environ.get("REPRO_BENCH_ENGINE_JSON")
    if artifact and payload:
        with open(artifact, "w") as handle:
            json.dump(payload, handle, indent=2)


class TestGraphOverlap:
    """The job graph overlaps the fault campaign with the wafer Monte
    Carlo; the pre-graph schedule barriered between the two stages and
    left a worker idle for the whole single-job fault stage."""

    def test_graph_overlap_beats_barriered(self, netlist,
                                           engine_report):
        from repro.fab.yield_model import run_fault_coverage

        wafers, faults = (12, 60) if SMOKE else (96, 400)
        rounds = 1 if SMOKE else 2
        engine = Engine(jobs=2)
        # Warm the pool and the compiled fault backend in both
        # workers so neither mode pays one-time setup.
        run_yield_study(netlist, FC4_WAFER, wafers=2, seed=1,
                        fault_check=1, engine=engine)
        run_fault_coverage(cores=("flexicore4",), seed=1, faults=1,
                           engine=engine)

        def timed(fn):
            started = time.perf_counter()
            fn()
            return time.perf_counter() - started

        def barriered():
            run_yield_study(netlist, FC4_WAFER, wafers=wafers,
                            seed=2022, engine=engine)
            run_fault_coverage(cores=("flexicore4",), seed=2022,
                               faults=faults, engine=engine)

        def graph():
            run_yield_study(netlist, FC4_WAFER, wafers=wafers,
                            seed=2022, fault_check=faults,
                            engine=engine)

        barriered_s = min(timed(barriered) for _ in range(rounds))
        graph_s = min(timed(graph) for _ in range(rounds))
        engine.close()
        ratio = graph_s / barriered_s
        # Overlap converts idle-worker time into progress, so the
        # wall-clock win needs real concurrency: 2 pool workers plus
        # the coordinating parent.  On fewer cores wall clock equals
        # total CPU work whatever the schedule; there the acceptance
        # degrades to "streaming adds no overhead".
        cores = os.cpu_count() or 1
        strict = not SMOKE and cores >= 3
        engine_report["graph_overlap"] = {
            "wafers": wafers, "faults": faults, "jobs": 2,
            "barriered_s": barriered_s, "graph_s": graph_s,
            "ratio": ratio, "cpu_count": cores, "strict": strict,
        }
        bound = "< 0.95" if strict else f"<= 1.15 ({cores} core(s))"
        print_result(
            "Graph streaming vs barriered stages (2 workers)",
            f"barriered {barriered_s * 1e3:8.1f} ms"
            f"  (wafer stage, then fault stage)\n"
            f"graph     {graph_s * 1e3:8.1f} ms"
            f"  (fault node overlaps wafer nodes)\n"
            f"ratio     {ratio:8.2f}x (acceptance: {bound})",
        )
        if strict:
            assert ratio < 0.95, (graph_s, barriered_s)
        elif not SMOKE:
            assert ratio <= 1.15, (graph_s, barriered_s)


class TestRemoteCacheTier:
    """A cold worker joining the cluster answers from the shared tier:
    digest-addressed blobs travel coordinator -> worker instead of
    being recomputed."""

    def test_cold_remote_worker_hit_rate(self, netlist, tmp_path,
                                         engine_report):
        from repro.engine import ResultCache
        from repro.engine.executors.socketcluster import (
            SocketClusterExecutor,
        )

        wafers = 12
        baseline = run_yield_study(
            netlist, FC4_WAFER, wafers=wafers, seed=2022,
            engine=Engine(jobs=1, cache=tmp_path),
        )

        executor = SocketClusterExecutor(
            bind="127.0.0.1:0", min_workers=1, worker_wait_s=60.0,
            cache=ResultCache(tmp_path),
        )
        host, port = executor.address
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))), "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        worker = subprocess.Popen(
            [sys.executable, "-c",
             "from repro.engine.executors.worker import run_worker\n"
             f"run_worker({host!r}, {port})"],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 30.0
            while executor.workers < 1:
                assert time.monotonic() < deadline, "worker never joined"
                time.sleep(0.02)
            # Engine cache off: every node is dispatched to the cold
            # worker, whose only warm path is the coordinator tier.
            engine = Engine(jobs=2, cache=None, executor=executor)
            started = time.perf_counter()
            summary = run_yield_study(netlist, FC4_WAFER,
                                      wafers=wafers, seed=2022,
                                      engine=engine)
            remote_s = time.perf_counter() - started
            stats = executor.describe()
            engine.close()
        finally:
            try:
                worker.wait(timeout=10)
            except subprocess.TimeoutExpired:
                worker.kill()
                worker.wait(timeout=10)
        assert summary == baseline
        served = stats["remote_cache_hits"] + stats["remote_computed"]
        hit_rate = stats["remote_cache_hits"] / served
        engine_report["remote_cache_tier"] = {
            "wafers": wafers,
            "remote_cache_hits": stats["remote_cache_hits"],
            "remote_computed": stats["remote_computed"],
            "hit_rate": hit_rate, "elapsed_s": remote_s,
        }
        print_result(
            "Cold remote worker vs shared cache tier",
            f"remote hits    {stats['remote_cache_hits']:4d}\n"
            f"computed       {stats['remote_computed']:4d}"
            f"  (the uncached merge node)\n"
            f"hit rate       {100 * hit_rate:6.1f}% "
            f"(acceptance: > 90%)\n"
            f"wall clock     {remote_s * 1e3:6.1f} ms",
        )
        assert hit_rate > 0.9, stats
