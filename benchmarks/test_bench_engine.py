"""Execution-engine benchmarks: cold vs cached, serial vs parallel.

These demonstrate the two acceptance properties of the engine on the
real experiment paths (not toy jobs): a warm result cache makes a rerun
at least 5x faster, and a process pool produces byte-identical results
to the serial path.  Run with ``pytest benchmarks/ --benchmark-only``
(add ``-s`` to see the speedup report).
"""

import time

import pytest

from benchmarks.conftest import print_result
from repro.engine import Engine
from repro.fab.process import FC4_WAFER
from repro.fab.yield_model import run_yield_study
from repro.netlist.cores import build_flexicore4


@pytest.fixture(scope="module")
def netlist():
    return build_flexicore4()


class TestYieldStudyCache:
    def test_cached_rerun_is_5x_faster(self, netlist, tmp_path):
        """Acceptance: the second invocation rides the cache."""

        def study(engine):
            return run_yield_study(
                netlist, FC4_WAFER, wafers=8, seed=2022, engine=engine
            )

        started = time.perf_counter()
        cold = study(Engine(jobs=1, cache=tmp_path))
        cold_s = time.perf_counter() - started

        warm_engine = Engine(jobs=1, cache=tmp_path)
        started = time.perf_counter()
        warm = study(warm_engine)
        warm_s = time.perf_counter() - started

        assert warm == cold
        assert warm_engine.metrics.cache_hits == 8
        assert cold_s >= 5 * warm_s, (cold_s, warm_s)
        print_result(
            "Engine cache speedup (yield study, 8 wafers)",
            f"cold  {cold_s * 1e3:8.1f} ms\n"
            f"warm  {warm_s * 1e3:8.1f} ms\n"
            f"ratio {cold_s / warm_s:8.1f}x (acceptance: >= 5x)",
        )

    def test_warm_cache_bench(self, netlist, tmp_path, benchmark):
        """Steady-state cached lookup cost for the full study."""
        engine = Engine(jobs=1, cache=tmp_path)
        run_yield_study(netlist, FC4_WAFER, wafers=8, seed=2022,
                        engine=engine)

        summary = benchmark(
            lambda: run_yield_study(
                netlist, FC4_WAFER, wafers=8, seed=2022,
                engine=Engine(jobs=1, cache=tmp_path),
            )
        )
        assert 0.6 < summary[4.5]["inclusion"] <= 1.0


class TestYieldStudyParallel:
    def test_parallel_bench(self, netlist, benchmark):
        """Process-pool fan-out of the wafer Monte Carlo."""
        serial = run_yield_study(
            netlist, FC4_WAFER, wafers=8, seed=2022, engine=Engine(jobs=1)
        )
        summary = benchmark.pedantic(
            lambda: run_yield_study(
                netlist, FC4_WAFER, wafers=8, seed=2022,
                engine=Engine(jobs=4),
            ),
            rounds=2, iterations=1,
        )
        assert summary == serial
