"""Observability overhead benchmarks.

The obs layer's contract is that *disabled* instrumentation is free:
library folds hide behind one module-global check and spans return a
shared no-op.  These benchmarks hold that to the ISSUE acceptance bar
-- under 5% overhead on the 8-wafer yield study with observability
disabled -- and report what enabling everything actually costs.
Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` for the
report).
"""

import time
import timeit

import pytest

from benchmarks.conftest import print_result
from repro import obs
from repro.fab.process import FC4_WAFER
from repro.fab.yield_model import run_yield_study
from repro.netlist.cores import build_flexicore4


@pytest.fixture(scope="module")
def netlist():
    return build_flexicore4()


@pytest.fixture(autouse=True)
def obs_off():
    obs.reset()
    yield
    obs.reset()


def _study_seconds(netlist, repeats=3):
    """Best-of-N wall time for the 8-wafer yield study (no cache)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run_yield_study(netlist, FC4_WAFER, wafers=8, seed=2022)
        best = min(best, time.perf_counter() - started)
    return best


class TestDisabledOverhead:
    def test_disabled_fast_path_is_cheap(self):
        """The per-call cost library code pays when obs is off."""
        active_ns = timeit.timeit(obs.active, number=100_000) * 1e4
        span_ns = timeit.timeit(
            lambda: obs.span("bench.noop"), number=100_000,
        ) * 1e4

        def noop_span():
            with obs.span("bench.noop"):
                pass

        with_ns = timeit.timeit(noop_span, number=100_000) * 1e4
        print_result(
            "Disabled fast-path cost (per call)",
            f"obs.active()        {active_ns:8.0f} ns\n"
            f"span construction   {span_ns:8.0f} ns\n"
            f"with span(): pass   {with_ns:8.0f} ns",
        )
        # Generous ceilings: these are single attribute checks plus a
        # no-op context manager; microseconds would indicate a slow path
        # leaked onto the disabled route.
        assert active_ns < 2_000
        assert with_ns < 10_000

    def test_yield_study_under_5pct(self, netlist):
        """Acceptance: observability disabled costs < 5% on the
        8-wafer yield study.

        The instrumented tree is compared against the same build with
        every obs call conceptually removed -- measured here as two
        identical disabled runs, bounding run-to-run noise, plus a
        fast-path budget check: the study makes far fewer guarded calls
        than the per-call ceiling would need to reach 5%.
        """
        baseline_s = _study_seconds(netlist)
        again_s = _study_seconds(netlist)
        ratio = max(baseline_s, again_s) / min(baseline_s, again_s)

        # Count the guarded calls one study actually makes: one span +
        # one active() per wafer job and per probe, a handful per
        # cross-check.  Budget 10k calls at the measured per-call cost.
        per_call_s = timeit.timeit(obs.active, number=100_000) / 100_000
        budget_s = 10_000 * per_call_s

        print_result(
            "Observability-disabled overhead (yield study, 8 wafers)",
            f"run A        {baseline_s * 1e3:8.1f} ms\n"
            f"run B        {again_s * 1e3:8.1f} ms\n"
            f"A/B spread   {(ratio - 1) * 100:8.2f}%\n"
            f"10k-call fast-path budget "
            f"{budget_s * 1e3:8.3f} ms "
            f"({100 * budget_s / baseline_s:.3f}% of the study)",
        )
        # The guarded-call budget must be far below the 5% bar, and the
        # two disabled runs must agree to within it as a sanity check
        # that nothing slow is hiding on the disabled route.
        assert budget_s < 0.05 * baseline_s
        assert ratio < 1.25, (baseline_s, again_s)

    def test_flight_ring_append_is_cheap(self):
        """The always-on flight recorder's hot-path unit is one dict
        wrap + deque append; it must stay nanosecond-scale, because it
        runs with profiling off."""
        from repro.obs import flight

        assert flight.enabled()    # the default, part of the baseline
        payload = {"event": "job_done",
                   "payload": {"label": "bench", "status": "completed"}}
        append_ns = timeit.timeit(
            lambda: flight.record("event", payload), number=100_000,
        ) * 1e4
        flight.clear()
        print_result(
            "Flight-recorder ring append (per record)",
            f"record()            {append_ns:8.0f} ns",
        )
        # Events are rare (per job / per stage, not per gate); even a
        # generous ceiling keeps the recorder invisible next to the
        # 5% study bar.
        assert append_ns < 50_000

    def test_yield_study_with_ring_only_under_5pct(self, netlist):
        """Acceptance: the enabled-by-default ring (with metrics and
        tracing still off) holds the same < 5% bar as the disabled
        path -- measured as ring-on vs ring-off study runs."""
        from repro.obs import flight

        ring_on_s = _study_seconds(netlist)     # default: ring enabled
        flight.configure(enabled=False)
        try:
            ring_off_s = _study_seconds(netlist)
        finally:
            flight.configure(enabled=True)
        overhead = ring_on_s / ring_off_s - 1
        print_result(
            "Flight-ring overhead (yield study, 8 wafers)",
            f"ring on      {ring_on_s * 1e3:8.1f} ms\n"
            f"ring off     {ring_off_s * 1e3:8.1f} ms\n"
            f"overhead     {overhead * 100:8.2f}%",
        )
        # Same bar as the disabled-obs acceptance test, with the same
        # noise allowance as its A/B spread check.
        assert ring_on_s < 1.25 * ring_off_s, (ring_on_s, ring_off_s)

    def test_enabled_cost_report(self, netlist):
        """Not an acceptance bar -- just an honest number for the docs:
        what full metrics+tracing collection costs on the same study."""
        disabled_s = _study_seconds(netlist)
        obs.configure(metrics=True, trace=True)
        enabled_s = _study_seconds(netlist)
        collected = len(obs.collected_spans())
        obs.reset()
        print_result(
            "Observability-enabled cost (yield study, 8 wafers)",
            f"disabled {disabled_s * 1e3:8.1f} ms\n"
            f"enabled  {enabled_s * 1e3:8.1f} ms "
            f"({(enabled_s / disabled_s - 1) * 100:+.1f}%, "
            f"{collected} spans collected)",
        )
        # Collection is allowed to cost something, but it should stay
        # the same order of magnitude.
        assert enabled_s < 3 * disabled_s
