"""Service benchmark: concurrent clients against one warm cache.

Boots a ``repro.service`` instance in-process (ephemeral port), warms
the content-addressed cache with one job per distinct parameter set,
then fans out N concurrent :class:`AsyncServiceClient` submissions
from a single event loop.  Reports p50/p95 end-to-end latency
(submit -> terminal) and the cache hit rate; the acceptance property
is that every warm request is answered from the cache.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI): a handful of
clients and a single round -- it checks the service survives
concurrent load and that warm submissions hit, not how fast the
runner machine is.

Set ``REPRO_BENCH_SERVICE_JSON=<path>`` to emit a machine-readable
``BENCH_SERVICE.json`` summary (CI uploads it with the obs
artifacts).
"""

import asyncio
import json
import os
import time

from benchmarks.conftest import print_result
from repro.engine import ResultCache
from repro.service import (
    DEV_TENANT_KEY,
    AsyncServiceClient,
    ServiceClient,
    ServiceConfig,
    start_in_thread,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
CLIENTS = 4 if SMOKE else 16
ROUNDS = 1 if SMOKE else 3
#: Distinct parameter sets; concurrent clients cycle through them so
#: the fan-out exercises several cache keys, not one hot entry.
KERNELS = ("Parity Check", "XorShift8") if SMOKE else (
    "Parity Check", "XorShift8", "IntAvg", "Thresholding",
)


def _params(kernel):
    return {"kernel": kernel, "transactions": 2 if SMOKE else 8,
            "isa": "flexicore4"}


def _percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


async def _client_round(base_url, count):
    """``count`` concurrent submit->wait round trips; returns
    (latencies, documents)."""
    client = AsyncServiceClient(base_url, DEV_TENANT_KEY)

    async def one(index):
        params = _params(KERNELS[index % len(KERNELS)])
        started = time.perf_counter()
        document = await client.run("kernel_run", params, timeout=120.0)
        return time.perf_counter() - started, document

    pairs = await asyncio.gather(*(one(i) for i in range(count)))
    return [p[0] for p in pairs], [p[1] for p in pairs]


class TestServiceThroughput:
    def test_warm_cache_fanout(self, tmp_path):
        """Acceptance: under concurrent load, every warm request is a
        cache hit and completes."""
        cache = ResultCache(tmp_path / "cache")
        handle = start_in_thread(ServiceConfig(
            port=0, cache=cache, engine_jobs=1,
            max_running=4, max_queued=4 * CLIENTS,
        ))
        try:
            warm_client = ServiceClient(handle.base_url, DEV_TENANT_KEY)
            # Cold pass: one job per distinct parameter set fills the
            # shared cache (and is itself timed for the report).
            cold_s = time.perf_counter()
            for kernel in KERNELS:
                document = warm_client.run(
                    "kernel_run", _params(kernel), timeout=120.0)
                assert document["status"] == "completed", document
                assert document["cache_hit"] is False
            cold_s = time.perf_counter() - cold_s

            latencies = []
            hits = 0
            total = 0
            for _ in range(ROUNDS):
                round_lat, documents = asyncio.run(
                    _client_round(handle.base_url, CLIENTS))
                latencies.extend(round_lat)
                for document in documents:
                    assert document["status"] == "completed", document
                    total += 1
                    hits += bool(document["cache_hit"])
        finally:
            handle.stop()

        hit_rate = hits / total
        assert hit_rate == 1.0, (hits, total)
        p50 = _percentile(latencies, 0.50)
        p95 = _percentile(latencies, 0.95)

        payload = {
            "clients": CLIENTS,
            "rounds": ROUNDS,
            "kernels": list(KERNELS),
            "requests": total,
            "cache_hits": hits,
            "hit_rate": hit_rate,
            "cold_fill_s": cold_s,
            "p50_s": p50,
            "p95_s": p95,
            "mean_s": sum(latencies) / len(latencies),
            "smoke": SMOKE,
        }
        artifact = os.environ.get("REPRO_BENCH_SERVICE_JSON")
        if artifact:
            with open(artifact, "w") as handle_:
                json.dump(payload, handle_, indent=2)
        print_result(
            f"Service warm-cache fan-out ({CLIENTS} concurrent clients"
            f" x {ROUNDS} rounds, {len(KERNELS)} cache keys)",
            f"cold fill {cold_s * 1e3:8.1f} ms "
            f"({len(KERNELS)} jobs, serial)\n"
            f"warm p50  {p50 * 1e3:8.1f} ms\n"
            f"warm p95  {p95 * 1e3:8.1f} ms\n"
            f"hit rate  {hit_rate:8.0%} ({hits}/{total})",
        )

    def test_warm_single_request_bench(self, benchmark, tmp_path):
        """Steady-state cost of one warm submit->wait round trip."""
        cache = ResultCache(tmp_path / "cache")
        handle = start_in_thread(ServiceConfig(port=0, cache=cache))
        try:
            client = ServiceClient(handle.base_url, DEV_TENANT_KEY)
            params = _params(KERNELS[0])
            cold = client.run("kernel_run", params, timeout=120.0)
            assert cold["status"] == "completed"

            def warm():
                document = client.run("kernel_run", params, timeout=120.0)
                assert document["cache_hit"] is True
                return document

            benchmark(warm)
        finally:
            handle.stop()
