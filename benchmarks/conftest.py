"""Shared fixtures for the benchmark harness."""

import pytest


def print_result(title, text):
    """Print a regenerated table/figure under its own banner (visible
    with ``pytest benchmarks/ --benchmark-only -s``)."""
    banner = "=" * len(title)
    print(f"\n{title}\n{banner}\n{text}\n")
