"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation varies one modeling/design decision and reports how the
headline outcome moves:

- MMU arm-run length vs accidental page switches on real output traffic;
- the subroutine (return-register) extension's code-size effect;
- pipeline branch-penalty sensitivity of the Acc P energy win;
- defect-density sensitivity of the Table 5 yield;
- die-cost sensitivity to yield (the sub-cent claim's margin).
"""

import numpy as np
import pytest

from benchmarks.conftest import print_result


class TestMmuArmCountAblation:
    def test_arm_run_length(self, benchmark):
        """Replay Calculator output traffic (which legitimately contains
        the sentinel as data) through transducers with different arm-run
        requirements and count false page switches."""
        from repro.kernels import calculator
        from repro.kernels.kernel import Target
        from repro.sim.mmu import Mmu

        target = Target.named("flexicore4")
        kernel = calculator.KERNEL
        rng = np.random.default_rng(17)
        inputs = kernel.generate_inputs(rng, 60)
        expected = kernel.expected(inputs)  # clean data stream

        def false_arms(arm_count):
            sink = []
            mmu = Mmu(arm_count=arm_count).attach(sink.append)
            for value in expected:
                mmu.observe_output(value)
            return mmu.page_switches  # all switches here are spurious

        def sweep():
            return {n: false_arms(n) for n in (1, 2, 3, 4)}

        results = benchmark(sweep)
        assert results[1] > 0            # naive protocol misfires
        assert results[3] == 0           # the shipped protocol is clean
        assert results[4] == 0
        print_result(
            "Ablation: MMU arm-run length vs spurious page switches",
            "\n".join(f"arm run {n}: {count} spurious switches"
                      for n, count in results.items()),
        )


class TestSubroutineAblation:
    def test_return_register_code_size(self, benchmark):
        """Code size with and without the 8-flip-flop return register
        (call sites share one pooled shift routine vs full inlining)."""
        from repro.kernels.kernel import Target
        from repro.kernels.suite import get_kernel

        def measure():
            inline = Target.named("extacc[base]")
            pooled = Target.named("extacc[subr]")
            rows = {}
            for name in ("IntAvg", "XorShift8"):
                kernel = get_kernel(name)
                rows[name] = (
                    kernel.program(inline).static_instructions,
                    kernel.program(pooled).static_instructions,
                )
            return rows

        rows = benchmark(measure)
        for name, (inline, pooled) in rows.items():
            assert pooled < inline, name
        print_result(
            "Ablation: subroutine pooling (static instructions)",
            "\n".join(
                f"{name}: inline {inline} -> pooled {pooled} "
                f"({100 * (1 - pooled / inline):.0f}% smaller)"
                for name, (inline, pooled) in rows.items()
            ),
        )


class TestBranchPenaltyAblation:
    def test_pipeline_penalty_sensitivity(self, benchmark):
        """How much of the Acc P energy win survives a deeper flush?"""
        from repro.dse.designs import ACC_P, BASELINE
        from repro.dse.evaluate import _design_static, period_units
        from repro.kernels.kernel import Target
        from repro.kernels.suite import SUITE
        from repro.sim.timing import cycles_pipelined, cycles_single_cycle
        from repro.tech.cells import SECONDS_PER_DELAY_UNIT
        from repro.tech.power import OperatingPoint, static_power_w

        def sweep():
            base_netlist, base_report = _design_static(BASELINE)
            p_netlist, p_report = _design_static(ACC_P)
            base_power = static_power_w(base_netlist.pullups,
                                        OperatingPoint())
            p_power = static_power_w(p_netlist.pullups, OperatingPoint())
            base_period = period_units(
                base_report, BASELINE.microarch
            ) * SECONDS_PER_DELAY_UNIT
            p_period = period_units(
                p_report, ACC_P.microarch
            ) * SECONDS_PER_DELAY_UNIT
            base_target = Target.named("flexicore4")
            p_target = Target.named("extacc")
            ratios = {}
            for penalty in (1, 2, 3):
                base_e, p_e = 0.0, 0.0
                for kernel in SUITE:
                    rng = np.random.default_rng(3)
                    inputs = kernel.generate_inputs(rng, 6)
                    base_stats = kernel.check(base_target,
                                              list(inputs)).stats
                    p_stats = kernel.check(p_target, list(inputs)).stats
                    base_e += base_power * base_period * \
                        cycles_single_cycle(base_stats)
                    p_e += p_power * p_period * cycles_pipelined(
                        p_stats, branch_penalty=penalty
                    )
                ratios[penalty] = p_e / base_e
            return ratios

        ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
        assert ratios[1] < ratios[2] < ratios[3]
        assert ratios[3] < 1.2  # the win degrades gracefully
        print_result(
            "Ablation: Acc P energy vs branch-flush penalty",
            "\n".join(f"penalty {p}: energy x{r:.2f} of FlexiCore4"
                      for p, r in ratios.items()),
        )


class TestDefectDensityAblation:
    def test_yield_sensitivity(self, benchmark):
        from dataclasses import replace

        from repro.fab import FC4_WAFER, run_yield_study
        from repro.netlist.cores import build_flexicore4

        netlist = build_flexicore4()

        def sweep():
            results = {}
            for scale in (0.5, 1.0, 2.0, 4.0):
                process = replace(
                    FC4_WAFER,
                    defect_density_per_mm2=(
                        FC4_WAFER.defect_density_per_mm2 * scale
                    ),
                )
                rng = np.random.default_rng(12)
                summary = run_yield_study(netlist, process, rng,
                                          wafers=3)
                results[scale] = summary[4.5]["inclusion"]
            return results

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        values = [results[s] for s in sorted(results)]
        assert values == sorted(values, reverse=True)
        print_result(
            "Ablation: yield vs defect density (4.5 V, inclusion zone)",
            "\n".join(f"D0 x{scale}: {100 * y:.0f}%"
                      for scale, y in results.items()),
        )


class TestCostAblation:
    def test_cost_vs_yield(self, benchmark):
        from repro.fab.cost import cost_sensitivity

        curve = benchmark(
            cost_sensitivity, [0.2, 0.4, 0.57, 0.81, 0.95]
        )
        assert curve[0.81] < 0.01   # the paper's sub-cent claim
        assert curve[0.2] > curve[0.81]
        print_result(
            "Ablation: good-die cost vs yield (volume production)",
            "\n".join(f"yield {100 * y:.0f}%: ${cost:.4f}"
                      for y, cost in curve.items()),
        )
