"""FlexiCore8 ISA: 8-bit datapath, 4-word memory, LOAD BYTE (Fig. 2b)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import DecodeError, OperandRangeError, get_isa
from repro.isa.flexicore8 import LOAD_BYTE_OPCODE

ISA = get_isa("flexicore8")


def execute(mnemonic, operands, acc=0, mem=None):
    state = ISA.new_state()
    state.acc = acc
    if mem:
        for addr, value in mem.items():
            state.mem[addr] = value
    decoded = ISA.decode(ISA.encode(mnemonic, operands))
    ISA.execute(state, decoded)
    return state


class TestShape:
    def test_datapath_and_memory(self):
        assert ISA.word_bits == 8
        assert ISA.mem_words == 4

    def test_has_all_flexicore4_instructions_plus_ldb(self):
        fc4 = set(get_isa("flexicore4").mnemonics())
        fc8 = set(ISA.mnemonics())
        assert fc8 == fc4 | {"ldb"}

    def test_memory_address_is_two_bits(self):
        with pytest.raises(OperandRangeError):
            ISA.encode("load", (4,))


class TestLoadByte:
    def test_opcode_byte_matches_figure_2b(self):
        assert LOAD_BYTE_OPCODE == 0b0000_1000
        assert ISA.encode("ldb", (0xAB,)) == bytes([0x08, 0xAB])

    def test_ldb_is_two_bytes(self):
        assert ISA.spec("ldb").size == 2

    @given(st.integers(0, 255))
    def test_ldb_loads_full_byte(self, value):
        state = execute("ldb", (value,))
        assert state.acc == value
        assert state.pc == 2  # consumed opcode + data byte

    def test_ldb_decode_consumes_data_byte(self):
        code = bytes([LOAD_BYTE_OPCODE, 0x5A])
        decoded = ISA.decode(code)
        assert decoded.mnemonic == "ldb"
        assert decoded.operands == (0x5A,)
        assert decoded.size == 2

    def test_decoder_flag_cleared_after_execution(self):
        state = execute("ldb", (1,))
        assert state.load_byte_pending is False


class TestSignExtension:
    """I-type immediates sign-extend across the 8-bit datapath."""

    def test_addi_negative(self):
        state = execute("addi", (-3,), acc=10)
        assert state.acc == 7

    def test_nandi_zero_yields_all_ones(self):
        # The 'nandi 0' constant idiom must still produce -1.
        state = execute("nandi", (0,), acc=0x5A)
        assert state.acc == 0xFF

    def test_nandi_minus_one_is_full_not(self):
        state = execute("nandi", (0xF,), acc=0x5A)
        assert state.acc == (~0x5A) & 0xFF

    @given(st.integers(0, 255), st.integers(-8, 7))
    def test_addi_matches_signed_arithmetic(self, acc, imm):
        state = execute("addi", (imm,), acc=acc)
        assert state.acc == (acc + imm) & 0xFF


class TestSemantics:
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_memory_ops_full_width(self, acc, value):
        state = execute("add", (2,), acc=acc, mem={2: value})
        assert state.acc == (acc + value) & 0xFF
        state = execute("xor", (2,), acc=acc, mem={2: value})
        assert state.acc == acc ^ value

    @given(st.integers(0, 255))
    def test_branch_tests_bit7(self, acc):
        state = execute("brn", (5,), acc=acc)
        assert (state.pc == 5) == bool(acc & 0x80)

    def test_undefined_mtype_hole_raises(self):
        with pytest.raises(DecodeError):
            ISA.decode(bytes([0b0000_0100]))  # M-type with bit2 set
