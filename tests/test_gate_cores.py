"""Gate-level FlexiCore4/8 vs the ISA simulator (the Section 4.1 flow)."""

import numpy as np
import pytest

from repro.asm import assemble
from repro.fab.testing import directed_program, random_program
from repro.isa import get_isa
from repro.netlist import (
    analyze,
    build_flexicore4,
    build_flexicore8,
    run_cross_check,
)


@pytest.fixture(scope="module")
def fc4():
    return build_flexicore4()


@pytest.fixture(scope="module")
def fc8():
    return build_flexicore8()


class TestStructure:
    def test_fc4_gate_and_device_counts_near_paper(self, fc4):
        # Paper: 336 gates, 2104 devices.
        assert 180 <= fc4.gate_count <= 450
        assert 1500 <= fc4.device_count <= 2700
        assert fc4.flop_count == 39  # 7 PC + 4 acc + 7x4 mem

    def test_fc8_is_modestly_larger(self, fc8, fc4):
        # Paper: FlexiCore8 uses ~9% more area than FlexiCore4.
        ratio = fc8.nand2_area / fc4.nand2_area
        assert 1.02 <= ratio <= 1.35

    def test_memory_is_largest_module(self, fc4, fc8):
        for netlist in (fc4, fc8):
            breakdown = netlist.module_breakdown()
            largest = max(breakdown, key=lambda m: breakdown[m]["area"])
            assert largest == "memory"

    def test_fc4_module_fractions_near_table2(self, fc4):
        from repro.experiments.paper_data import TABLE2_AREA_PCT

        breakdown = fc4.module_breakdown()
        for module, paper_pct in TABLE2_AREA_PCT.items():
            measured = 100 * breakdown[module]["area_fraction"]
            assert abs(measured - paper_pct) < 12, module

    def test_decoder_is_tiny(self, fc4):
        breakdown = fc4.module_breakdown()
        assert breakdown["decoder"]["area_fraction"] < 0.05

    def test_only_library_cells_used(self, fc4, fc8):
        from repro.tech.cells import LIBRARY

        for netlist in (fc4, fc8):
            for gate in netlist.gates:
                assert gate.cell.name in LIBRARY

    def test_netlists_validate(self, fc4, fc8):
        assert fc4.validate() and fc8.validate()


class TestCrossCheck:
    def test_directed_program_fc4(self, fc4):
        isa = get_isa("flexicore4")
        result = run_cross_check(
            fc4, isa, directed_program(isa),
            inputs=list(range(16)) * 4, max_instructions=400,
        )
        assert result.passed, result.first_mismatch

    def test_directed_program_fc8(self, fc8):
        isa = get_isa("flexicore8")
        result = run_cross_check(
            fc8, isa, directed_program(isa),
            inputs=list(range(16)) * 4, max_instructions=400,
        )
        assert result.passed, result.first_mismatch

    def test_fc8_load_byte_on_silicon(self, fc8):
        isa = get_isa("flexicore8")
        program = assemble(
            "ldb 0xA5\nstore 2\nload 2\nstore 1\nnandi 0\nbrn 0\n", isa
        )
        result = run_cross_check(fc8, isa, program, max_instructions=40)
        assert result.passed, result.first_mismatch

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_random_programs_fc4(self, fc4, seed):
        isa = get_isa("flexicore4")
        rng = np.random.default_rng(seed)
        program = random_program(isa, rng, length=80)
        inputs = [int(rng.integers(0, 16)) for _ in range(128)]
        result = run_cross_check(
            fc4, isa, program, inputs=inputs, max_instructions=300,
        )
        assert result.passed, result.first_mismatch

    @pytest.mark.parametrize("seed", [5, 6])
    def test_random_programs_fc8(self, fc8, seed):
        isa = get_isa("flexicore8")
        rng = np.random.default_rng(seed)
        program = random_program(isa, rng, length=60)
        inputs = [int(rng.integers(0, 256)) for _ in range(128)]
        result = run_cross_check(
            fc8, isa, program, inputs=inputs, max_instructions=250,
        )
        assert result.passed, result.first_mismatch

    def test_all_gates_toggle_on_directed_vectors(self, fc4):
        """Section 4.1: 'all gates toggle at least once'."""
        isa = get_isa("flexicore4")
        result = run_cross_check(
            fc4, isa, directed_program(isa),
            inputs=[(3 * i) % 16 for i in range(256)],
            max_instructions=500,
        )
        assert result.passed
        assert result.toggle_fraction > 0.9

    def test_multi_page_program_rejected(self, fc4):
        isa = get_isa("flexicore4")
        program = assemble("addi 1\n.page 1\naddi 2\n", isa)
        with pytest.raises(ValueError):
            run_cross_check(fc4, isa, program)


class TestTiming:
    def test_fc8_critical_path_longer_than_fc4(self, fc4, fc8):
        # Section 4.1: the 8-bit ripple adder roughly doubles the chain.
        r4, r8 = analyze(fc4), analyze(fc8)
        assert r8.critical_delay_units > 1.2 * r4.critical_delay_units

    def test_fc4_meets_test_clock_at_both_voltages(self, fc4):
        report = analyze(fc4)
        assert report.meets(12.5e3, vdd=4.5)
        assert report.meets(12.5e3, vdd=3.0)  # typical die is marginal

    def test_fc8_fails_test_clock_at_3v(self, fc8):
        report = analyze(fc8)
        assert report.meets(12.5e3, vdd=4.5)
        assert not report.meets(12.5e3, vdd=3.0)

    def test_slow_die_fails(self, fc4):
        report = analyze(fc4)
        assert not report.meets(12.5e3, vdd=3.0, speed_factor=2.0)

    def test_critical_path_is_nonempty(self, fc4):
        report = analyze(fc4)
        assert report.levels > 5
        assert len(report.critical_path) == report.levels

    def test_period_scales_with_voltage(self, fc4):
        report = analyze(fc4)
        assert report.period_s(vdd=3.0) > report.period_s(vdd=4.5)
