"""Unit and property tests for repro.isa.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import bits


class TestMasks:
    def test_mask_widths(self):
        assert bits.mask(1) == 1
        assert bits.mask(4) == 0xF
        assert bits.mask(8) == 0xFF

    def test_truncate(self):
        assert bits.truncate(0x1F, 4) == 0xF
        assert bits.truncate(-1, 4) == 0xF
        assert bits.truncate(16, 4) == 0

    @given(st.integers(-1000, 1000), st.integers(1, 16))
    def test_truncate_idempotent(self, value, width):
        once = bits.truncate(value, width)
        assert bits.truncate(once, width) == once


class TestSignExtend:
    @pytest.mark.parametrize("value,width,expected", [
        (0x0, 4, 0), (0x7, 4, 7), (0x8, 4, -8), (0xF, 4, -1),
        (0x7F, 8, 127), (0x80, 8, -128), (0xFF, 8, -1),
    ])
    def test_known_values(self, value, width, expected):
        assert bits.sign_extend(value, width) == expected

    @given(st.integers(0, 255))
    def test_roundtrip_through_truncate(self, value):
        signed = bits.sign_extend(value, 8)
        assert bits.truncate(signed, 8) == value

    @given(st.integers(-8, 7))
    def test_signed_range_is_fixed_point(self, value):
        assert bits.sign_extend(bits.truncate(value, 4), 4) == value


class TestBitAccess:
    def test_msb(self):
        assert bits.msb(0x8, 4) == 1
        assert bits.msb(0x7, 4) == 0
        assert bits.msb(0x80, 8) == 1

    def test_bit(self):
        assert bits.bit(0b1010, 1) == 1
        assert bits.bit(0b1010, 0) == 0

    def test_get_field(self):
        assert bits.get_field(0b1011_0110, 5, 4) == 0b11
        assert bits.get_field(0xFF, 7, 0) == 0xFF

    def test_set_field(self):
        assert bits.set_field(0, 5, 4, 0b10) == 0b10_0000
        assert bits.set_field(0xFF, 3, 0, 0) == 0xF0

    def test_set_field_overflow_raises(self):
        with pytest.raises(ValueError):
            bits.set_field(0, 5, 4, 0b100)

    @given(st.integers(0, 255), st.integers(0, 7), st.integers(0, 7))
    def test_get_set_roundtrip(self, word, hi, lo):
        if hi < lo:
            hi, lo = lo, hi
        field = bits.get_field(word, hi, lo)
        assert bits.set_field(word, hi, lo, field) == word


class TestCounting:
    @given(st.integers(0, 1 << 16))
    def test_parity_matches_popcount(self, value):
        assert bits.parity(value) == bits.popcount(value) % 2

    @given(st.integers(0, 255))
    def test_reverse_bits_involution(self, value):
        assert bits.reverse_bits(bits.reverse_bits(value, 8), 8) == value

    def test_reverse_bits_known(self):
        assert bits.reverse_bits(0b0001, 4) == 0b1000
        assert bits.reverse_bits(0b0110, 4) == 0b0110


class TestAdders:
    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 1))
    def test_add_with_carry_matches_integers(self, a, b, cin):
        value, carry = bits.add_with_carry(a, b, cin, 4)
        total = a + b + cin
        assert value == total & 0xF
        assert carry == (total >> 4) & 1

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 1))
    def test_sub_with_borrow_matches_integers(self, a, b, bin_):
        value, borrow = bits.sub_with_borrow(a, b, bin_, 8)
        total = a - b - bin_
        assert value == total & 0xFF
        assert borrow == (1 if total < 0 else 0)

    def test_carry_chain_composes(self):
        # 0xFF + 0x01 across two nibbles equals the 8-bit result.
        lo, carry = bits.add_with_carry(0xF, 0x1, 0, 4)
        hi, carry2 = bits.add_with_carry(0xF, 0x0, carry, 4)
        assert (hi << 4) | lo == (0xFF + 0x01) & 0xFF
        assert carry2 == 1
