"""Microarchitecture cycle models and the energy arithmetic."""

import pytest

from repro.sim.simulator import ExecStats
from repro.sim.timing import (
    ExecutionEstimate,
    InfeasibleDesign,
    MicroArch,
    cycle_count,
    cycles_multicycle,
    cycles_pipelined,
    cycles_single_cycle,
    estimate,
    requires_multicycle_fetch,
)


def stats(one_byte=0, two_byte=0, taken=0):
    s = ExecStats()
    s.instructions = one_byte + two_byte
    s.fetched_bytes = one_byte + 2 * two_byte
    s.taken_branches = taken
    if one_byte:
        s.by_size[1] = one_byte
    if two_byte:
        s.by_size[2] = two_byte
    return s


class TestSingleCycle:
    def test_one_cycle_per_single_byte_instruction(self):
        assert cycles_single_cycle(stats(one_byte=100), bus_bits=8) == 100

    def test_two_byte_instructions_take_two_fetches(self):
        assert cycles_single_cycle(
            stats(one_byte=10, two_byte=5), bus_bits=8
        ) == 20

    def test_wide_bus_collapses_fetches(self):
        assert cycles_single_cycle(
            stats(two_byte=5), bus_bits=16
        ) == 5

    def test_strict_mode_rejects_multicycle_fetch(self):
        with pytest.raises(InfeasibleDesign):
            cycles_single_cycle(stats(two_byte=1), bus_bits=8,
                                strict=True)


class TestPipelined:
    def test_fill_plus_branch_penalties(self):
        # 100 instructions, 10 taken branches, 1-cycle fill.
        assert cycles_pipelined(
            stats(one_byte=100, taken=10), bus_bits=8
        ) == 111

    def test_narrow_bus_serializes_fetch(self):
        assert cycles_pipelined(
            stats(two_byte=10), bus_bits=8
        ) == 21


class TestMulticycle:
    def test_doubles_cpi(self):
        # Section 3.4: a multicycle FlexiCore would double the CPI.
        assert cycles_multicycle(stats(one_byte=50), bus_bits=8) == 100

    def test_extra_execute_cycles(self):
        assert cycles_multicycle(
            stats(one_byte=50), bus_bits=8, execute_cycles=2
        ) == 150

    def test_narrow_bus_and_two_byte(self):
        assert cycles_multicycle(stats(two_byte=10), bus_bits=8) == 30


class TestDispatch:
    def test_cycle_count_dispatch(self):
        s = stats(one_byte=10)
        assert cycle_count(s, MicroArch.SINGLE_CYCLE) == 10
        assert cycle_count(s, MicroArch.PIPELINED) == 11
        assert cycle_count(s, MicroArch.MULTICYCLE) == 20

    def test_requires_multicycle_fetch(self):
        from repro.isa import get_isa

        assert not requires_multicycle_fetch(get_isa("flexicore4"), 8)
        assert requires_multicycle_fetch(get_isa("loadstore"), 8)
        assert not requires_multicycle_fetch(get_isa("loadstore"), 16)
        assert requires_multicycle_fetch(get_isa("flexicore8"), 8)


class TestEnergy:
    def test_static_power_dominates(self):
        est = ExecutionEstimate(
            cycles=12500, frequency_hz=12.5e3, static_power_w=4.5e-3
        )
        assert est.time_s == pytest.approx(1.0)
        assert est.energy_j == pytest.approx(4.5e-3)
        assert est.energy_per_cycle_j == pytest.approx(360e-9)

    def test_estimate_convenience(self):
        est = estimate(
            stats(one_byte=125), MicroArch.SINGLE_CYCLE,
            frequency_hz=12.5e3, static_power_w=4.5e-3,
        )
        assert est.cycles == 125
        assert est.time_s == pytest.approx(0.01)

    def test_paper_energy_per_instruction(self):
        """4.5 mW at 12.5 kHz is the paper's 360 nJ per instruction."""
        est = ExecutionEstimate(1, 12.5e3, 4.5e-3)
        assert est.energy_per_cycle_j * 1e9 == pytest.approx(360.0)
