"""Cross-model property tests: the strongest consistency checks.

Random well-formed programs are pushed through multiple independent
implementations of the same contract and must agree:

- assembler -> image -> disassembler -> reassembler is a fixed point;
- the gate-level FlexiCore4 netlist matches the ISA simulator
  instruction for instruction (the Section 4.1 methodology, fuzzed);
- macro expansions on feature-rich ISAs match the base ISA's results.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import Assembler, assemble, disassemble
from repro.isa import get_isa
from repro.kernels.macros import build_library
from repro.sim import run_program

FC4 = get_isa("flexicore4")


def random_fc4_source(rng, length):
    lines = []
    for _ in range(length):
        choice = int(rng.integers(0, 9))
        value = int(rng.integers(0, 16))
        addr = int(rng.integers(0, 8))
        target = int(rng.integers(0, length))
        lines.append([
            f"addi {value}", f"nandi {value}", f"xori {value}",
            f"add {addr}", f"nand {addr}", f"xor {addr}",
            f"load {addr}", f"store {addr}", f"brn {target}",
        ][choice])
    return "\n".join(lines)


class TestAssemblerFixpoint:
    @pytest.mark.parametrize("seed", range(12))
    def test_disassemble_reassemble(self, seed):
        rng = np.random.default_rng(seed)
        source = random_fc4_source(rng, 60)
        program = assemble(source, FC4)
        image = program.image()[:program.size_bytes]
        lines = disassemble(image, FC4)
        round_tripped = assemble(
            "\n".join(line.text for line in lines), FC4
        )
        assert round_tripped.image()[:program.size_bytes] == image


class TestGateVsIsaFuzz:
    @pytest.fixture(scope="class")
    def netlist(self):
        from repro.netlist import build_flexicore4

        return build_flexicore4()

    @pytest.mark.parametrize("seed", range(8))
    def test_random_program_agreement(self, netlist, seed):
        from repro.fab.testing import random_program
        from repro.netlist.verify import run_cross_check

        rng = np.random.default_rng(100 + seed)
        program = random_program(FC4, rng, length=64)
        inputs = [int(rng.integers(0, 16)) for _ in range(96)]
        result = run_cross_check(
            netlist, FC4, program, inputs=inputs, max_instructions=200,
        )
        assert result.passed, result.first_mismatch


class TestMacroEquivalenceAcrossTargets:
    """The same macro program must produce identical outputs on every
    accumulator target, despite wildly different expansions."""

    SOURCE = """
    load 0
    store 2
    load 0
    %satadd_m 2
    store 1
    load 2
    %lsr1
    store 1
    %bltu_i 9, low
    %ldi 1
    store 1
    %halt
low:
    %ldi 0
    store 1
    %halt
    %emit_pool
"""

    @pytest.mark.parametrize("seed", range(6))
    def test_targets_agree(self, seed):
        rng = np.random.default_rng(seed)
        inputs = [int(rng.integers(0, 16)) for _ in range(2)]
        outputs = {}
        for name in ("flexicore4", "extacc", "flexicore4plus",
                     "extacc[subr]", "extacc[adc+shift]"):
            isa = get_isa(name)
            program = Assembler(isa, build_library(isa)).assemble(
                self.SOURCE
            )
            _, sink = run_program(program, inputs=list(inputs),
                                  max_cycles=50_000)
            outputs[name] = sink.values
        reference = outputs.pop("flexicore4")
        for name, values in outputs.items():
            assert values == reference, (name, inputs)


class TestEncodingUniqueness:
    @pytest.mark.parametrize("isa_name", [
        "flexicore4", "flexicore8", "extacc", "loadstore",
    ])
    def test_no_two_instructions_share_an_encoding(self, isa_name):
        isa = get_isa(isa_name)
        seen = {}
        for mnemonic in isa.mnemonics():
            spec = isa.spec(mnemonic)
            operands = tuple(
                max(op.lo, 1) if op.kind.name != "TARGET" else 2
                for op in spec.operands
            )
            encoded = bytes(spec.encode(operands))
            assert encoded not in seen, (
                f"{mnemonic} and {seen.get(encoded)} share {encoded.hex()}"
            )
            seen[encoded] = mnemonic


class TestStateInvariants:
    @given(st.integers(0, 255), st.integers(1, 16))
    def test_acc_always_in_range(self, value, steps):
        state = FC4.new_state()
        state.set_acc(value)
        assert 0 <= state.acc <= 15

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=30))
    def test_simulated_state_stays_in_range(self, raw):
        """Whatever bytes we execute (of the decodable subset), the
        architectural state stays within its declared widths."""
        from repro.isa.errors import DecodeError

        state = FC4.new_state()
        for byte in raw:
            try:
                decoded = FC4.decode(bytes([byte]))
            except DecodeError:
                continue
            FC4.execute(state, decoded)
            assert 0 <= state.acc <= 15
            assert 0 <= state.pc <= 127
            assert all(0 <= word <= 15 for word in state.mem)
