"""Verilog export, ISA reference generation, and the usage-variation
analysis of Section 4.2."""

import re

import numpy as np
import pytest

from repro.isa import get_isa
from repro.isa.docs import all_references, isa_reference
from repro.netlist import build_flexicore4
from repro.netlist.export import cell_models, to_verilog


@pytest.fixture(scope="module")
def verilog():
    return to_verilog(build_flexicore4())


class TestVerilogExport:
    def test_module_header(self, verilog):
        assert verilog.splitlines()[1].startswith("module flexicore4")

    def test_every_gate_instantiated(self, verilog):
        netlist = build_flexicore4()
        instances = re.findall(r"^\s+(\w+_X\d)\s+\w+\s*\(", verilog,
                               re.MULTILINE)
        assert len(instances) == netlist.gate_count

    def test_only_library_cells_referenced(self, verilog):
        from repro.tech.cells import LIBRARY

        instances = set(re.findall(r"^\s+(\w+_X\d)\s", verilog,
                                   re.MULTILINE))
        assert instances <= set(LIBRARY)

    def test_flops_get_clock(self, verilog):
        for line in verilog.splitlines():
            if line.strip().startswith("DFF"):
                assert ".clk(clk)" in line

    def test_ports_present(self, verilog):
        for port in ("instr0", "instr7", "iport0", "pc6", "oport3"):
            assert port in verilog

    def test_module_comments_tag_architecture(self, verilog):
        for module in ("memory", "alu", "pc", "acc", "decoder"):
            assert f"// {module}" in verilog

    def test_cell_models_cover_library(self):
        from repro.tech.cells import LIBRARY

        models = cell_models()
        for cell_name in LIBRARY:
            assert f"module {cell_name} " in models

    def test_include_models_concatenates(self):
        netlist = build_flexicore4()
        full = to_verilog(netlist, include_models=True)
        assert "module NAND2_X1 " in full
        assert "module flexicore4" in full

    def test_balanced_module_endmodule(self, verilog):
        assert verilog.count("module ") - verilog.count("endmodule") == 0


class TestIsaReference:
    @pytest.mark.parametrize("isa_name", [
        "flexicore4", "flexicore8", "extacc", "loadstore",
    ])
    def test_reference_lists_every_mnemonic(self, isa_name):
        isa = get_isa(isa_name)
        text = isa_reference(isa)
        for mnemonic in isa.mnemonics():
            assert re.search(rf"^{mnemonic}\b", text, re.MULTILINE), \
                mnemonic

    def test_reference_shows_machine_parameters(self):
        text = isa_reference(get_isa("flexicore4"))
        assert "datapath: 4 bits" in text
        assert "8 words" in text

    def test_encodings_are_binary(self):
        text = isa_reference(get_isa("flexicore4"))
        assert re.search(r"[01]{8}", text)

    def test_all_references(self):
        text = all_references()
        assert "flexicore8" in text and "loadstore" in text


class TestUsageVariation:
    @pytest.fixture(scope="class")
    def probe(self):
        from repro.fab import FC4_WAFER, fabricate_wafer

        rng = np.random.default_rng(33)
        wafer = fabricate_wafer(build_flexicore4(), FC4_WAFER, rng)
        return wafer.probe(4.5, rng)

    def test_distribution_shape(self, probe):
        from repro.fab.variation import usage_distribution

        dist = usage_distribution(probe, instructions_per_use=100)
        assert dist.minimum < dist.mean < dist.maximum
        assert len(dist.usages) > 20

    def test_variation_impacts_usage_count(self, probe):
        """Section 4.2's point: nominally identical dies differ
        significantly in how many uses a battery affords."""
        from repro.fab.variation import usage_distribution

        dist = usage_distribution(probe, instructions_per_use=100)
        assert dist.relative_spread > 0.3
        assert 0.08 < dist.rsd < 0.3

    def test_budget_scales_usages(self, probe):
        from repro.fab.variation import usage_distribution

        small = usage_distribution(probe, 100, budget_j=10.0)
        large = usage_distribution(probe, 100, budget_j=100.0)
        assert large.mean > 5 * small.mean

    def test_summary_text(self, probe):
        from repro.fab.variation import summarize, usage_distribution

        text = summarize(usage_distribution(probe, 100))
        assert "uses/die" in text

    def test_empty_wafer_rejected(self):
        from repro.fab.variation import usage_distribution
        from repro.fab.yield_model import WaferProbeResult

        with pytest.raises(ValueError):
            usage_distribution(
                WaferProbeResult(voltage=4.5, records=[]), 100
            )
