"""The extended accumulator ISA at 8-bit width (a what-if variant).

The paper's DSE is 4-bit, but the ISA machinery is parametric; these
tests pin the width-8 behaviour (an obvious extension a user would try).
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.extended import FULL_FEATURES, ExtendedAccumulator

ISA8 = ExtendedAccumulator(features=FULL_FEATURES, width=8)


def execute(mnemonic, operands, acc=0, carry=0, mem=None):
    state = ISA8.new_state()
    state.acc = acc
    state.carry = carry
    if mem:
        for addr, value in mem.items():
            state.mem[addr] = value
    decoded = ISA8.decode(ISA8.encode(mnemonic, operands))
    ISA8.execute(state, decoded)
    return state


class TestWidth8:
    def test_state_dimensions(self):
        state = ISA8.new_state()
        assert state.width == 8
        assert len(state.mem) == 8

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_full_width_memory_ops(self, acc, value):
        state = execute("add", (3,), acc=acc, mem={3: value})
        assert state.acc == (acc + value) & 0xFF
        assert state.carry == (acc + value) >> 8

    @given(st.integers(0, 255), st.integers(1, 7))
    def test_shifts_cover_seven_positions(self, acc, shamt):
        state = execute("lsri", (shamt,), acc=acc)
        assert state.acc == acc >> shamt

    @given(st.integers(0, 255))
    def test_asri_sign_fill(self, acc):
        state = execute("asri", (3,), acc=acc)
        signed = acc - 256 if acc & 0x80 else acc
        assert state.acc == (signed >> 3) & 0xFF

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 1))
    def test_swb_at_width8(self, acc, value, carry):
        state = execute("swb", (3,), acc=acc, carry=carry,
                        mem={3: value})
        total = acc - value - (1 - carry)
        assert state.acc == total & 0xFF

    def test_branch_tests_bit7(self):
        state = execute("brn", (5,), acc=0x80)
        assert state.pc == 5
        state = execute("brn", (5,), acc=0x7F)
        assert state.pc == 1

    def test_immediates_stay_four_bit(self):
        # The instruction byte only has room for imm4 regardless of the
        # datapath width.
        from repro.isa.errors import OperandRangeError

        with pytest.raises(OperandRangeError):
            ISA8.encode("addi", (16,))

    def test_roundtrip(self):
        for mnemonic in ISA8.mnemonics():
            spec = ISA8.spec(mnemonic)
            operands = tuple(
                2 if op.kind.name == "TARGET" else max(op.lo, 1)
                for op in spec.operands
            )
            encoded = ISA8.encode(mnemonic, operands)
            decoded = ISA8.decode(encoded)
            assert decoded.mnemonic == mnemonic
