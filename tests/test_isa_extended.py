"""Extended accumulator ISA (Section 6.1): feature gating and semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import DecodeError, get_isa
from repro.isa.extended import (
    ALL_FEATURES,
    FLEXICORE4PLUS_FEATURES,
    FULL_FEATURES,
    ExtendedAccumulator,
)

FULL = get_isa("extacc")
BASE = get_isa("extacc[base]")


def execute(isa, mnemonic, operands, acc=0, carry=0, mem=None, pc=0):
    state = isa.new_state()
    state.acc = acc
    state.carry = carry
    state.pc = pc
    if mem:
        for addr, value in mem.items():
            state.mem[addr] = value
    decoded = isa.decode(isa.encode(mnemonic, operands))
    isa.execute(state, decoded)
    return state


class TestFeatureGating:
    def test_base_matches_flexicore4_operations(self):
        base_ops = set(BASE.mnemonics())
        # Base semantics plus the simulator conveniences and EXT nand.
        assert "adc" not in base_ops
        assert "lsri" not in base_ops
        assert "br" not in base_ops
        assert "call" not in base_ops
        assert {"add", "addi", "nand", "nandi", "xor", "xori",
                "load", "store", "brn"} <= base_ops

    @pytest.mark.parametrize("feature,mnemonics", [
        ("adc", {"adc", "adci", "swb"}),
        ("shift", {"lsri", "asri"}),
        ("flags", {"br"}),
        ("mult", {"mull", "mulh"}),
        ("xchg", {"xch"}),
        ("subr", {"call", "ret"}),
        ("fullalu", {"and", "andi", "or", "ori", "sub", "neg"}),
    ])
    def test_feature_enables_exactly_its_instructions(self, feature,
                                                      mnemonics):
        isa = get_isa(f"extacc[{feature}]")
        enabled = set(isa.mnemonics()) - set(BASE.mnemonics())
        assert enabled == mnemonics

    def test_mem2x_doubles_memory(self):
        assert get_isa("extacc[mem2x]").mem_words == 16
        assert BASE.mem_words == 8

    def test_flexicore4plus_is_shift_plus_flags(self):
        isa = get_isa("flexicore4plus")
        assert isa.has("lsri") and isa.has("br")
        assert not isa.has("adc") and not isa.has("call")
        assert FLEXICORE4PLUS_FEATURES == frozenset({"shift", "flags"})

    def test_full_features_match_revised_operation_list(self):
        # Section 6.1 rejects the multiplier and the doubled memory.
        assert "mult" not in FULL_FEATURES
        assert "mem2x" not in FULL_FEATURES
        assert FULL.has("adci") and FULL.has("swb") and FULL.has("xch")

    def test_unknown_feature_rejected(self):
        with pytest.raises(ValueError):
            ExtendedAccumulator(features={"warp-drive"})

    def test_disabled_instructions_do_not_decode(self):
        encoded = FULL.encode("lsri", (2,))
        with pytest.raises(DecodeError):
            BASE.decode(encoded)


class TestCarryChain:
    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 1))
    def test_adc_uses_and_sets_carry(self, acc, value, carry):
        state = execute(FULL, "adc", (3,), acc=acc, carry=carry,
                        mem={3: value})
        total = acc + value + carry
        assert state.acc == total & 0xF
        assert state.carry == total >> 4

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_add_sets_carry_for_adc(self, acc, value):
        state = execute(FULL, "add", (3,), acc=acc, mem={3: value})
        assert state.carry == ((acc + value) >> 4)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_eight_bit_addition_via_add_adc(self, a, b):
        """The 'data coalescing' use case: two nibbles chained."""
        state = FULL.new_state()
        state.mem[2], state.mem[3] = a & 0xF, a >> 4
        state.mem[4], state.mem[5] = b & 0xF, b >> 4

        def run(mnemonic, operands):
            decoded = FULL.decode(FULL.encode(mnemonic, operands))
            FULL.execute(state, decoded)

        run("load", (2,))
        run("add", (4,))
        run("store", (6,))
        run("load", (3,))
        run("adc", (5,))
        total = (a + b) & 0xFF
        assert (state.acc << 4) | state.mem[6] == total

    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 1))
    def test_swb_subtract_with_borrow(self, acc, value, carry):
        state = execute(FULL, "swb", (3,), acc=acc, carry=carry,
                        mem={3: value})
        total = acc - value - (1 - carry)
        assert state.acc == total & 0xF
        assert state.carry == (0 if total < 0 else 1)

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_sub_sets_not_borrow(self, acc, value):
        state = execute(FULL, "sub", (3,), acc=acc, mem={3: value})
        assert state.acc == (acc - value) & 0xF
        assert state.carry == (1 if acc >= value else 0)


class TestShifts:
    @given(st.integers(0, 15), st.integers(1, 3))
    def test_lsri(self, acc, shamt):
        state = execute(FULL, "lsri", (shamt,), acc=acc)
        assert state.acc == acc >> shamt

    @given(st.integers(0, 15), st.integers(1, 3))
    def test_asri_replicates_sign(self, acc, shamt):
        state = execute(FULL, "asri", (shamt,), acc=acc)
        signed = acc - 16 if acc & 8 else acc
        assert state.acc == (signed >> shamt) & 0xF


class TestBranchesAndCalls:
    @given(st.integers(0, 15), st.integers(1, 7))
    def test_br_nzp_condition(self, acc, mask):
        state = execute(FULL, "br", (mask, 0x40), acc=acc, pc=0)
        negative = bool(acc & 8)
        zero = acc == 0
        positive = not negative and not zero
        taken = bool(
            (mask & 4 and negative) or (mask & 2 and zero)
            or (mask & 1 and positive)
        )
        assert (state.pc == 0x40) == taken
        if not taken:
            assert state.pc == 2  # two-byte instruction

    def test_unconditional_br(self):
        for acc in (0, 1, 8, 15):
            state = execute(FULL, "br", (7, 9), acc=acc)
            assert state.pc == 9

    def test_call_saves_return_address(self):
        state = execute(FULL, "call", (0x30,), pc=10)
        assert state.pc == 0x30
        assert state.retaddr == 12

    def test_ret_restores(self):
        state = FULL.new_state()
        state.retaddr = 0x22
        decoded = FULL.decode(FULL.encode("ret", ()))
        FULL.execute(state, decoded)
        assert state.pc == 0x22

    def test_brn_unchanged_from_base(self):
        state = execute(FULL, "brn", (5,), acc=0x8)
        assert state.pc == 5


class TestDatapathOps:
    @given(st.integers(0, 15), st.integers(0, 15))
    def test_xch_swaps(self, acc, value):
        state = execute(FULL, "xch", (4,), acc=acc, mem={4: value})
        assert state.acc == value
        assert state.mem[4] == acc

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_mull_mulh(self, acc, value):
        isa = get_isa("extacc[mult]")
        product = acc * value
        state = execute(isa, "mull", (3,), acc=acc, mem={3: value})
        assert state.acc == product & 0xF
        state = execute(isa, "mulh", (3,), acc=acc, mem={3: value})
        assert state.acc == product >> 4

    @given(st.integers(0, 15))
    def test_neg(self, acc):
        state = execute(FULL, "neg", (), acc=acc)
        assert state.acc == (-acc) & 0xF

    def test_halt_sets_flag(self):
        state = execute(FULL, "halt", ())
        assert state.halted


class TestRoundTrip:
    @pytest.mark.parametrize("isa_name", [
        "extacc", "extacc[base]", "flexicore4plus", "extacc[mult]",
        "extacc[adc+subr]",
    ])
    def test_encode_decode_all_instructions(self, isa_name):
        isa = get_isa(isa_name)
        for mnemonic in isa.mnemonics():
            spec = isa.spec(mnemonic)
            operands = tuple(max(op.lo, 1) if op.kind.name != "TARGET"
                             else 3 for op in spec.operands)
            encoded = isa.encode(mnemonic, operands)
            decoded = isa.decode(encoded)
            assert decoded.mnemonic == mnemonic
            assert decoded.spec.encode(decoded.operands) == encoded
