"""Structural builder blocks, verified functionally via gate simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.builder import NetlistBuilder
from repro.netlist.sim import GateLevelSimulator


def simulate(build_fn, **input_values):
    """Build a small netlist, drive inputs, settle, read outputs."""
    b = NetlistBuilder("test")
    outputs = build_fn(b)
    netlist = b.build()
    sim = GateLevelSimulator(netlist)
    sim.set_inputs(input_values)
    sim._settle(count_toggles=False)
    if isinstance(outputs, list):
        return [sim.values[net] for net in outputs]
    return sim.values[outputs]


class TestPrimitives:
    @given(st.integers(0, 1), st.integers(0, 1))
    def test_composed_and_or(self, a, b):
        def build(builder):
            x = builder.input("a")
            y = builder.input("b")
            return [builder.and_(x, y), builder.or_(x, y),
                    builder.xor(x, y), builder.xnor(x, y)]

        got = simulate(build, a=a, b=b)
        assert got == [a & b, a | b, a ^ b, 1 - (a ^ b)]

    @given(st.integers(0, 1), st.integers(0, 1), st.integers(0, 1))
    def test_mux(self, a, b, sel):
        def build(builder):
            return builder.mux(builder.input("a"), builder.input("b"),
                               builder.input("sel"))

        assert simulate(build, a=a, b=b, sel=sel) == (b if sel else a)

    @given(st.integers(0, 15))
    def test_and_or_trees(self, value):
        def build(builder):
            nets = builder.input_bus("x", 4)
            return [builder.and_tree(nets), builder.or_tree(nets),
                    builder.nor_tree_is_zero(nets)]

        got = simulate(build, x=value)
        assert got == [int(value == 15), int(value != 0),
                       int(value == 0)]


class TestAdders:
    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 1))
    def test_ripple_adder_with_side_effects(self, a, b, cin):
        def build(builder):
            a_bits = builder.input_bus("a", 4)
            b_bits = builder.input_bus("b", 4)
            c = builder.input("cin")
            sums, cout, props, nands = builder.ripple_adder(
                a_bits, b_bits, c
            )
            return sums + [cout] + props + nands

        got = simulate(build, a=a, b=b, cin=cin)
        total = a + b + cin
        sum_bits = [(total >> i) & 1 for i in range(4)]
        xor_bits = [((a ^ b) >> i) & 1 for i in range(4)]
        nand_bits = [1 - ((a & b) >> i & 1) for i in range(4)]
        assert got[:4] == sum_bits
        assert got[4] == (total >> 4) & 1
        assert got[5:9] == xor_bits       # the free XOR of Figure 3b
        assert got[9:] == nand_bits       # the free NAND

    @given(st.integers(0, 127))
    def test_incrementer(self, value):
        def build(builder):
            bits = builder.input_bus("pc", 7)
            sums, _ = builder.incrementer(bits)
            return sums

        got = simulate(build, pc=value)
        expected = (value + 1) & 0x7F
        assert got == [(expected >> i) & 1 for i in range(7)]


class TestDecoder:
    @given(st.integers(0, 7))
    def test_one_hot(self, select):
        def build(builder):
            sel = builder.input_bus("s", 3)
            return builder.decoder(sel)

        got = simulate(build, s=select)
        assert got == [1 if i == select else 0 for i in range(8)]


class TestShifterAndMultiplier:
    @given(st.integers(0, 15), st.integers(0, 3))
    def test_barrel_shifter_logical(self, value, shamt):
        def build(builder):
            bits = builder.input_bus("x", 4)
            sh = builder.input_bus("s", 2)
            return builder.barrel_shifter_right(bits, sh)

        got = simulate(build, x=value, s=shamt)
        expected = value >> shamt
        assert got == [(expected >> i) & 1 for i in range(4)]

    @given(st.integers(0, 15), st.integers(0, 3))
    def test_barrel_shifter_arithmetic(self, value, shamt):
        def build(builder):
            bits = builder.input_bus("x", 4)
            sh = builder.input_bus("s", 2)
            return builder.barrel_shifter_right(
                bits, sh, arithmetic_sel=builder.const1
            )

        got = simulate(build, x=value, s=shamt)
        signed = value - 16 if value & 8 else value
        expected = (signed >> shamt) & 0xF
        assert got == [(expected >> i) & 1 for i in range(4)]

    @settings(max_examples=40)
    @given(st.integers(0, 15), st.integers(0, 15))
    def test_array_multiplier(self, a, b):
        def build(builder):
            a_bits = builder.input_bus("a", 4)
            b_bits = builder.input_bus("b", 4)
            return builder.array_multiplier(a_bits, b_bits)

        got = simulate(build, a=a, b=b)
        product = a * b
        assert got == [(product >> i) & 1 for i in range(8)]


class TestRegisters:
    def test_register_with_enable_recirculates(self):
        b = NetlistBuilder("reg")
        d = b.input_bus("d", 4)
        en = b.input("en")
        q = b.register(d, enable=en)
        for net in q:
            b.output(net)
        sim = GateLevelSimulator(b.build())
        sim.set_inputs({"d": 0x9, "en": 1})
        sim.step()
        assert [sim.values[n] for n in q] == [1, 0, 0, 1]
        sim.set_inputs({"d": 0x3, "en": 0})
        sim.step()
        assert [sim.values[n] for n in q] == [1, 0, 0, 1]  # held

    def test_mux4_word(self):
        def build(builder):
            words = [builder.input_bus(f"w{i}", 2) for i in range(4)]
            s0 = builder.input("s0")
            s1 = builder.input("s1")
            return builder.mux4_word(words, s0, s1)

        for select in range(4):
            got = simulate(
                build, w0=0, w1=1, w2=2, w3=3,
                s0=select & 1, s1=select >> 1,
            )
            assert got == [select & 1, select >> 1]


class TestBuilderPlumbing:
    def test_undriven_input_rejected(self):
        b = NetlistBuilder("bad")
        b.nand("ghost_a", "ghost_b")
        with pytest.raises(ValueError):
            b.build()

    def test_double_driver_rejected(self):
        b = NetlistBuilder("bad")
        a = b.input("a")
        b.inv(a, out="n")
        b.inv(a, out="n")
        with pytest.raises(ValueError):
            b.build()

    def test_module_tagging(self):
        b = NetlistBuilder("tagged")
        a = b.input("a")
        b.set_module("alpha")
        b.inv(a)
        b.set_module("beta")
        b.inv(a)
        netlist = b.build()
        assert netlist.modules() == ["alpha", "beta"]
