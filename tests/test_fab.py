"""Fabrication and yield Monte Carlo (Section 4)."""

import numpy as np
import pytest

from repro.fab import (
    FC4_WAFER,
    FC8_WAFER,
    Wafer,
    fabricate_wafer,
    run_yield_study,
)
from repro.fab.wafer import EDGE_EXCLUSION_MM, WAFER_DIAMETER_MM
from repro.netlist import build_flexicore4, build_flexicore8


@pytest.fixture(scope="module")
def fc4_netlist():
    return build_flexicore4()


@pytest.fixture(scope="module")
def fc8_netlist():
    return build_flexicore8()


class TestWaferGeometry:
    def test_die_count_near_photo(self):
        # Figure 4a shows 123 FlexiCore4 dies on the 200 mm wafer.
        wafer = Wafer.standard()
        assert 110 <= len(wafer) <= 135

    def test_all_sites_inside_wafer(self):
        wafer = Wafer.standard()
        for site in wafer.sites:
            assert site.radius_mm < WAFER_DIAMETER_MM / 2

    def test_exclusion_zone_partition(self):
        wafer = Wafer.standard()
        assert len(wafer.inclusion_sites) + len(wafer.edge_sites) == \
            len(wafer)
        boundary = WAFER_DIAMETER_MM / 2 - EDGE_EXCLUSION_MM
        for site in wafer.inclusion_sites:
            assert site.radius_mm <= boundary
        for site in wafer.edge_sites:
            assert site.radius_mm > boundary

    def test_edge_zone_is_significant(self):
        wafer = Wafer.standard()
        assert len(wafer.edge_sites) >= 0.15 * len(wafer)

    def test_grid_shape(self):
        rows, cols = Wafer.standard().grid_shape()
        assert rows == cols


class TestFabrication:
    def test_deterministic_under_seed(self, fc4_netlist):
        w1 = fabricate_wafer(fc4_netlist, FC4_WAFER,
                             np.random.default_rng(3))
        w2 = fabricate_wafer(fc4_netlist, FC4_WAFER,
                             np.random.default_rng(3))
        assert [d.defects for d in w1.dies] == [d.defects for d in w2.dies]
        assert [d.speed_factor for d in w1.dies] == \
            [d.speed_factor for d in w2.dies]

    def test_edge_dies_are_worse(self, fc4_netlist):
        rng = np.random.default_rng(11)
        defect_rates = {"edge": [], "incl": []}
        for _ in range(20):
            wafer = fabricate_wafer(fc4_netlist, FC4_WAFER, rng)
            for die in wafer.dies:
                bucket = ("incl" if die.site.in_inclusion_zone else "edge")
                defect_rates[bucket].append(die.has_defect)
        assert np.mean(defect_rates["edge"]) > \
            2 * np.mean(defect_rates["incl"])


class TestProbing:
    def test_functional_dies_have_zero_errors(self, fc4_netlist):
        rng = np.random.default_rng(5)
        wafer = fabricate_wafer(fc4_netlist, FC4_WAFER, rng)
        probe = wafer.probe(4.5, rng)
        for record in probe.records:
            if record.functional:
                assert record.errors == 0
                assert record.failure_mode is None
            else:
                assert record.errors > 0
                assert record.failure_mode in ("defect", "timing")

    def test_lower_voltage_only_loses_dies(self, fc4_netlist):
        """Any die functional at 3 V must also be functional at 4.5 V
        (same defects, easier timing)."""
        rng = np.random.default_rng(6)
        wafer = fabricate_wafer(fc4_netlist, FC4_WAFER, rng)
        at3 = wafer.probe(3.0, rng)
        at45 = wafer.probe(4.5, rng)
        for r3, r45 in zip(at3.records, at45.records):
            if r3.functional:
                assert r45.functional

    def test_current_scales_with_voltage(self, fc4_netlist):
        rng = np.random.default_rng(7)
        wafer = fabricate_wafer(fc4_netlist, FC4_WAFER, rng)
        mean3 = wafer.probe(3.0, rng).current_statistics()[0]
        mean45 = wafer.probe(4.5, rng).current_statistics()[0]
        assert mean3 < mean45

    def test_maps_cover_all_sites(self, fc4_netlist):
        rng = np.random.default_rng(8)
        wafer = fabricate_wafer(fc4_netlist, FC4_WAFER, rng)
        probe = wafer.probe(4.5, rng)
        assert len(probe.error_map()) == len(wafer.wafer)
        assert len(probe.current_map()) == len(wafer.wafer)


class TestYieldCalibration:
    """The headline Table 5 / Section 4.2 numbers, in loose bands."""

    @pytest.fixture(scope="class")
    def summaries(self, fc4_netlist, fc8_netlist):
        rng = np.random.default_rng(2022)
        return {
            "fc4": run_yield_study(fc4_netlist, FC4_WAFER, rng, wafers=8),
            "fc8": run_yield_study(fc8_netlist, FC8_WAFER, rng, wafers=8),
        }

    def test_fc4_inclusion_yield_at_4v5(self, summaries):
        assert 0.72 <= summaries["fc4"][4.5]["inclusion"] <= 0.90

    def test_fc4_inclusion_yield_at_3v(self, summaries):
        assert 0.42 <= summaries["fc4"][3.0]["inclusion"] <= 0.68

    def test_fc8_inclusion_yield_at_4v5(self, summaries):
        assert 0.45 <= summaries["fc8"][4.5]["inclusion"] <= 0.70

    def test_fc8_collapses_at_3v(self, summaries):
        # Paper: 6%.  The 8-bit adder misses timing on most corners.
        assert summaries["fc8"][3.0]["inclusion"] <= 0.15

    def test_full_wafer_below_inclusion(self, summaries):
        for core in summaries.values():
            for voltage in (3.0, 4.5):
                assert core[voltage]["full"] < core[voltage]["inclusion"]

    def test_current_rsd_near_paper(self, summaries):
        # Section 4.2: 15.3% (FlexiCore4) and 21.5% (FlexiCore8).
        assert 0.11 <= summaries["fc4"][4.5]["rsd"] <= 0.20
        assert 0.16 <= summaries["fc8"][4.5]["rsd"] <= 0.27

    def test_fc4_mean_current_near_1_1_ma(self, summaries):
        assert 0.9 <= summaries["fc4"][4.5]["mean_current_ma"] <= 1.3
        assert 0.6 <= summaries["fc4"][3.0]["mean_current_ma"] <= 0.9

    def test_fc8_refined_process_draws_less(self, summaries):
        assert summaries["fc8"][4.5]["mean_current_ma"] < \
            summaries["fc4"][4.5]["mean_current_ma"]


class TestGateLevelYield:
    """Wafer-scale gate-level probing (one cross-check lane per die)."""

    @pytest.fixture(scope="class")
    def campaign(self, fc4_netlist):
        from repro.fab.process import process_for
        from repro.fab.yield_model import gate_probe_wafer
        from repro.isa import get_isa

        rng = np.random.default_rng(11)
        fabricated = fabricate_wafer(
            fc4_netlist, process_for("flexicore4"), rng
        )
        probes, record = gate_probe_wafer(
            fc4_netlist, get_isa("flexicore4"), fabricated, rng,
            backend="vector", max_instructions=60,
        )
        return fc4_netlist, fabricated, probes, record

    def test_defect_free_dies_pass(self, campaign):
        _, _, _, record = campaign
        for die in record["dies"]:
            if die["defects"] == 0:
                assert die["fault_sites"] == []
                assert die["mismatches"] == 0

    def test_sampled_dies_bit_identical_to_interpreted(self, campaign):
        """Replaying a die's fault draw through the single-lane
        interpreted reference reproduces the vector campaign's mismatch
        count exactly -- the acceptance contract for the gate-level
        yield study."""
        from repro.fab.testing import directed_program
        from repro.isa import get_isa
        from repro.netlist.verify import run_cross_check_batch

        netlist, _, _, record = campaign
        isa = get_isa("flexicore4")
        defective = [d for d in record["dies"] if d["fault_sites"]]
        healthy = [d for d in record["dies"] if not d["fault_sites"]]
        sampled = defective[:3] + healthy[:1]
        assert len(sampled) >= 2
        faults = [d["fault_sites"] or None for d in sampled]
        replayed = run_cross_check_batch(
            netlist, isa, directed_program(isa),
            inputs=record["inputs"],
            max_instructions=record["max_instructions"],
            faults=faults, backend="interpreted",
        )
        for die, outcome in zip(sampled, replayed):
            assert outcome.mismatches == die["mismatches"]

    def test_gate_yield_bounded_below_by_analytic(self, campaign):
        """The only way the gate-level verdict can differ from the
        analytic model is a test escape (a defective die whose faults
        the vectors never observe), so gate-level functional counts
        dominate the analytic ones on the same wafer."""
        _, fabricated, probes, _ = campaign
        rng = np.random.default_rng(99)
        for voltage, probe in probes.items():
            analytic = fabricated.probe(voltage, rng)
            gate_pass = sum(r.functional for r in probe.records)
            analytic_pass = sum(r.functional for r in analytic.records)
            assert gate_pass >= analytic_pass

    def test_mismatching_die_fails_every_voltage(self, campaign):
        _, _, probes, record = campaign
        bad = [i for i, d in enumerate(record["dies"])
               if d["mismatches"] > 0]
        assert bad, "seeded wafer should have caught defects"
        for probe in probes.values():
            for index in bad:
                assert not probe.records[index].functional

    def test_study_runs_through_engine(self):
        from repro.fab import run_gate_yield_study
        from repro.fab.process import process_for

        study = run_gate_yield_study(
            process_for("flexicore4"), seed=5, wafers=2,
        )
        assert len(study["wafers"]) == 2
        for voltage in (3.0, 4.5):
            bucket = study["summary"][voltage]
            assert 0.0 <= bucket["full"] <= bucket["inclusion"] <= 1.0
        # Same seed, same study: the job graph is deterministic.
        again = run_gate_yield_study(
            process_for("flexicore4"), seed=5, wafers=2,
        )
        assert again["summary"] == study["summary"]
