"""Benchmark kernels: golden-model checks and per-kernel behaviours.

Every kernel is checked output-for-output against its Python reference on
every target (the software analogue of the paper's per-die vector
testing), plus kernel-specific properties: the PRNG's full period, the
calculator's exhaustive small-operand behaviour, FIR saturation rails,
and exhaustive parity.
"""

import numpy as np
import pytest

from repro.kernels import calculator, decision_tree, fir, parity, xorshift
from repro.kernels.kernel import Target
from repro.kernels.suite import SUITE, check_suite, get_kernel, kernel_names

TARGETS = ["flexicore4", "extacc", "flexicore4plus", "loadstore",
           "extacc[base]", "extacc[shift]", "extacc[flags]",
           "extacc[subr]", "extacc[mult]"]


@pytest.fixture(scope="module", params=TARGETS)
def target(request):
    return Target.named(request.param)


class TestSuiteRegistry:
    def test_table6_order(self):
        assert kernel_names() == (
            "Calculator", "Four-tap FIR", "Decision Tree", "IntAvg",
            "Thresholding", "Parity Check", "XorShift8",
        )

    def test_aliases(self):
        assert get_kernel("xorshift8").name == "XorShift8"
        assert get_kernel("Decision Tree").name == "Decision Tree"

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            get_kernel("quake")


@pytest.mark.parametrize("kernel", SUITE, ids=lambda k: k.name)
class TestGoldenModel:
    def test_matches_reference(self, target, kernel):
        rng = np.random.default_rng(1234)
        inputs = kernel.generate_inputs(rng, 10)
        result = kernel.check(target, inputs)
        assert result.instructions > 0

    def test_deterministic(self, target, kernel):
        inputs = kernel.generate_inputs(np.random.default_rng(7), 4)
        _, out1 = kernel.run(target, list(inputs))
        _, out2 = kernel.run(target, list(inputs))
        assert out1 == out2


class TestStaticShape:
    """Static instruction counts land in the paper's order of magnitude
    and shrink monotonically from base to the revised ISA."""

    def test_base_counts_within_2x_of_paper(self):
        from repro.experiments.paper_data import TABLE6

        target = Target.named("flexicore4")
        for kernel in SUITE:
            measured = kernel.program(target).static_instructions
            paper = TABLE6[kernel.name]
            assert measured <= 2 * paper, kernel.name
            assert measured >= paper / 6, kernel.name

    def test_revised_isa_never_larger(self):
        base = Target.named("extacc[base]")
        full = Target.named("extacc")
        for kernel in SUITE:
            base_size = kernel.program(base).size_bits
            full_size = kernel.program(full).size_bits
            assert full_size <= base_size, kernel.name

    def test_shift_extension_shrinks_shift_heavy_kernels(self):
        base = Target.named("extacc[base]")
        shift = Target.named("extacc[shift]")
        for name in ("IntAvg", "XorShift8", "Parity Check"):
            kernel = get_kernel(name)
            assert (kernel.program(shift).size_bits
                    < 0.6 * kernel.program(base).size_bits), name


class TestCalculator:
    @pytest.mark.parametrize("op,a,b,expected", [
        (calculator.OP_ADD, 7, 8, [15, 0]),
        (calculator.OP_ADD, 9, 9, [2, 1]),
        (calculator.OP_SUB, 9, 4, [5, 0]),
        (calculator.OP_SUB, 4, 9, [11, 1]),
        (calculator.OP_MUL, 3, 5, [15, 0]),
        (calculator.OP_MUL, 15, 15, [1, 14]),
        (calculator.OP_MUL, 7, 0, [0, 0]),
        (calculator.OP_DIV, 13, 4, [3, 1]),
        (calculator.OP_DIV, 3, 7, [0, 3]),
        (calculator.OP_DIV, 15, 1, [15, 0]),
    ])
    def test_known_transactions(self, op, a, b, expected):
        target = Target.named("flexicore4")
        kernel = get_kernel("calculator")
        _, outputs = kernel.run(target, [op, a, b])
        assert outputs == expected

    def test_exhaustive_addition(self):
        target = Target.named("flexicore4")
        kernel = get_kernel("calculator")
        inputs = []
        for a in range(0, 16, 3):
            for b in range(0, 16, 3):
                inputs += [calculator.OP_ADD, a, b]
        result = kernel.check(target, inputs)
        assert result.reason == "input_exhausted"

    def test_sentinel_remainder_survives_the_mmu(self):
        """div producing remainder 0xA immediately before the far-jump
        back must not corrupt the output stream (the protocol-hazard
        regression that motivated run-based arming)."""
        target = Target.named("flexicore4")
        kernel = get_kernel("calculator")
        inputs = [calculator.OP_DIV, 10, 11,   # q=0, r=10 (= sentinel)
                  calculator.OP_DIV, 9, 12,
                  calculator.OP_ADD, 1, 1]
        _, outputs = kernel.run(target, inputs)
        assert outputs == kernel.expected(inputs)

    def test_reference_rejects_division_by_zero(self):
        with pytest.raises(ValueError):
            calculator.reference([calculator.OP_DIV, 4, 0])

    def test_gen_inputs_op_never_divides_by_zero(self):
        rng = np.random.default_rng(0)
        samples = calculator.gen_inputs_op(calculator.OP_DIV, rng, 200)
        divisors = samples[2::3]
        assert all(d >= 1 for d in divisors)


class TestXorShift:
    def test_triple_has_full_period(self):
        x = xorshift.SEED
        seen = set()
        for _ in range(255):
            x = xorshift.next_state(x)
            assert x != 0
            seen.add(x)
        assert len(seen) == 255
        assert x == xorshift.SEED  # cyclic

    def test_output_stream_is_mmu_safe(self):
        """No three consecutive sentinel nibbles in the full period --
        the condition the multi-page base kernel relies on."""
        x = xorshift.SEED
        stream = []
        for _ in range(255):
            x = xorshift.next_state(x)
            stream += [x & 0xF, x >> 4]
        wrapped = stream + stream[:4]
        for i in range(len(stream)):
            assert not (wrapped[i] == wrapped[i + 1]
                        == wrapped[i + 2] == 0xA)

    def test_long_run_on_base_isa(self):
        target = Target.named("flexicore4")
        kernel = get_kernel("xorshift8")
        inputs = [0] * 64
        result = kernel.check(target, inputs)
        assert result.stats.page_switches >= 64  # multi-page hot loop


class TestFir:
    def test_saturation_rails(self):
        target = Target.named("flexicore4")
        kernel = get_kernel("fir")
        # Alternating extremes slam the accumulator into both rails.
        inputs = [7, 8 & 0xF, 7, 9, 7, 8]
        _, outputs = kernel.run(target, inputs)
        assert outputs == kernel.expected(inputs)

    def test_impulse_response(self):
        # x = [1, 0, 0, 0, 0]: y follows the coefficient signs.
        inputs = [1, 0, 0, 0, 0]
        expected = fir.reference(inputs)
        assert expected == [1, 0xF, 1, 0xF, 0]

    @pytest.mark.parametrize("coeffs", [
        (1, 1, 1, 1),          # low-pass (boxcar)
        (-1, 1, -1, 1),        # inverted edge detector
        (1, 1, -1, -1),        # step detector
    ])
    @pytest.mark.parametrize("target_name",
                             ["flexicore4", "extacc", "loadstore"])
    def test_custom_coefficients(self, coeffs, target_name):
        kernel = fir.make_kernel(coeffs)
        target = Target.named(target_name)
        inputs = [1, 15, 7, 8, 0, 9, 3, 12]
        result, outputs = kernel.run(target, inputs)
        assert outputs == kernel.expected(inputs)

    def test_custom_impulse_tracks_coefficients(self):
        kernel = fir.make_kernel((1, 1, 1, 1))
        assert kernel.expected([1, 0, 0, 0, 0]) == [1, 1, 1, 1, 0]

    def test_bad_coefficients_rejected(self):
        with pytest.raises(ValueError):
            fir.make_kernel((2, 1, 1, 1))
        with pytest.raises(ValueError):
            fir.make_kernel((1, 1, 1))


class TestParity:
    def test_exhaustive_bytes_reference(self):
        from repro.isa import bits

        for byte in range(256):
            got = parity.reference([byte & 0xF, byte >> 4])
            assert got == [bits.parity(byte)]

    def test_sampled_bytes_on_hardware(self):
        target = Target.named("flexicore4")
        kernel = get_kernel("parity")
        inputs = []
        for byte in range(0, 256, 17):
            inputs += [byte & 0xF, byte >> 4]
        kernel.check(target, inputs)

    def test_odd_input_count_rejected(self):
        with pytest.raises(ValueError):
            parity.reference([1])


class TestDecisionTree:
    def test_tree_is_deterministic(self):
        t1 = decision_tree.generate_tree()
        t2 = decision_tree.generate_tree()
        assert decision_tree.classify(t1, [3, 9, 14]) == \
            decision_tree.classify(t2, [3, 9, 14])

    def test_labels_stay_below_mmu_sentinel(self):
        def walk(node):
            if node.is_leaf:
                assert 0 <= node.label < 8
                return
            walk(node.left)
            walk(node.right)

        walk(decision_tree.generate_tree())

    def test_depth_is_four(self):
        def depth(node):
            if node.is_leaf:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        assert depth(decision_tree.generate_tree()) == 4

    def test_boundary_thresholds(self):
        target = Target.named("flexicore4")
        kernel = get_kernel("dectree")
        # Feature values at 0, 7, 8, 15 stress the unsigned compares.
        inputs = []
        for value in (0, 7, 8, 15):
            inputs += [value, value, value]
        kernel.check(target, inputs)


class TestIntAvg:
    def test_smoothing_converges_to_constant_input(self):
        from repro.kernels import intavg

        outputs = intavg.reference([12] * 20)
        assert outputs[-1] in (11, 12)  # converges up to rounding

    def test_carry_path(self):
        from repro.kernels import intavg

        # 15 + 15 = 30: the 5-bit intermediate must not be truncated.
        outputs = intavg.reference([15, 15, 15])
        assert outputs == [7, 11, 13]


class TestThresholding:
    def test_sticky_behaviour(self):
        from repro.kernels import thresholding

        outputs = thresholding.reference([1, 11, 2, 3])
        assert outputs == [0, 1, 1, 1]

    def test_boundary_is_strictly_greater(self):
        from repro.kernels import thresholding

        assert thresholding.reference([thresholding.THRESHOLD]) == [0]
        assert thresholding.reference([thresholding.THRESHOLD + 1]) == [1]


class TestCheckSuite:
    def test_all_kernels_on_primary_targets(self):
        for name in ("flexicore4", "extacc", "loadstore"):
            results = check_suite(
                Target.named(name), np.random.default_rng(99),
                transactions=4,
            )
            assert set(results) == set(kernel_names())

    def test_loadstore_requires_implementation(self):
        from repro.kernels.kernel import Kernel

        kernel = Kernel(
            name="stub", app_type="Reactive", description="",
            source_fn=lambda target: "nop",
            reference_fn=lambda inputs: [],
            input_fn=lambda rng, n: [],
        )
        with pytest.raises(ValueError):
            kernel.source(Target.named("loadstore"))
