"""Predecoded fast path vs single-step reference: bit-identical or bust.

Every observable of a run -- the full :class:`ExecStats`, the output
values *and their cycle stamps*, the halt reason, the final
architectural state, even decode-fault messages -- must match between
``fastpath=True`` (the predecoded dispatch) and ``fastpath=False`` (the
:meth:`Simulator.step` reference) on every ISA.
"""

import os

import numpy as np
import pytest

from repro.asm import assemble
from repro.fab.testing import directed_program, random_program
from repro.isa import get_isa
from repro.kernels.kernel import Target
from repro.kernels.suite import SUITE
from repro.sim import (
    SimulationError,
    Simulator,
    clear_predecode_cache,
    configure_dispatch,
    default_dispatch,
    predecode_image,
    resolve_dispatch,
    run_program,
)
from repro.sim.predecode import _IPORT_ADDR

ISA_NAMES = ("flexicore4", "flexicore8", "extacc", "loadstore")


def run_both(program, isa=None, inputs=None, **kwargs):
    ref = run_program(
        program, isa=isa,
        inputs=None if inputs is None else list(inputs),
        fastpath=False, **kwargs,
    )
    fast = run_program(
        program, isa=isa,
        inputs=None if inputs is None else list(inputs),
        fastpath=True, **kwargs,
    )
    return ref, fast


def assert_equivalent(program, isa=None, inputs=None, **kwargs):
    (ref_result, ref_sink), (fast_result, fast_sink) = run_both(
        program, isa=isa, inputs=inputs, **kwargs
    )
    assert fast_result.stats == ref_result.stats
    assert fast_result.halted == ref_result.halted
    assert fast_result.reason == ref_result.reason
    assert fast_sink.values == ref_sink.values
    assert fast_sink.cycles == ref_sink.cycles
    return ref_result, fast_result


def kernel_cases():
    cases = []
    for isa_name in ISA_NAMES:
        target = Target.named(isa_name)
        for kernel in SUITE:
            try:
                kernel.program(target)
            except Exception:
                continue  # no implementation for this target
            cases.append(pytest.param(
                isa_name, kernel, id=f"{isa_name}-{kernel.name}"
            ))
    return cases


class TestKernelSuite:
    @pytest.mark.parametrize("isa_name, kernel", kernel_cases())
    def test_kernels_bit_identical(self, isa_name, kernel):
        target = Target.named(isa_name)
        rng = np.random.default_rng(2022)
        inputs = kernel.generate_inputs(rng, 8)
        program = kernel.program(target)
        assert_equivalent(program, inputs=inputs)

    @pytest.mark.parametrize("isa_name, kernel", kernel_cases())
    def test_fastpath_passes_golden_model(self, isa_name, kernel):
        target = Target.named(isa_name)
        rng = np.random.default_rng(7)
        inputs = kernel.generate_inputs(rng, 6)
        result = kernel.check(target, inputs, fastpath=True)
        assert result.instructions > 0


#: ISAs the fab test-vector helpers support (they emit accumulator
#: mnemonics like ``load 0`` / ``store 1``).
ACC_ISA_NAMES = ("flexicore4", "flexicore8", "extacc")


class TestRandomPrograms:
    @pytest.mark.parametrize("isa_name", ISA_NAMES)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_programs(self, isa_name, seed):
        isa = get_isa(isa_name)
        # Multi-byte ISAs overflow the page at random_program's default
        # length; branch targets may then land mid-instruction, so a
        # wandering PC can hit a decode fault -- which must also be
        # identical between the two paths.
        max_size = max(spec.size for spec in isa.specs.values())
        program = random_program(
            isa, np.random.default_rng(seed), length=120 // max_size,
        )
        inputs = [int(x) for x in
                  np.random.default_rng(seed + 100).integers(0, 16, 64)]
        outcomes = []
        for fastpath in (False, True):
            try:
                result, sink = run_program(
                    program, inputs=list(inputs), max_cycles=20_000,
                    on_exhausted="hold", fastpath=fastpath,
                )
                outcomes.append(
                    (result.stats, result.reason, sink.values, sink.cycles)
                )
            except SimulationError as exc:
                outcomes.append(("fault", str(exc)))
        assert outcomes[0] == outcomes[1]

    @pytest.mark.parametrize("isa_name", ACC_ISA_NAMES)
    def test_directed_program(self, isa_name):
        isa = get_isa(isa_name)
        program = directed_program(isa)
        inputs = [int(x) for x in
                  np.random.default_rng(5).integers(0, 16, 64)]
        assert_equivalent(
            program, inputs=inputs, max_cycles=50_000,
            on_exhausted="hold",
        )


class TestFinalState:
    @pytest.mark.parametrize("isa_name", ISA_NAMES)
    def test_architectural_state_identical(self, isa_name):
        isa = get_isa(isa_name)
        if isa.accumulator:
            program = directed_program(isa)
        else:
            kernel = next(k for k in SUITE if k.name == "Parity Check")
            program = kernel.program(Target.named(isa_name))
        states = []
        for fastpath in (False, True):
            simulator = Simulator(isa, program)
            simulator.state.input_fn = lambda: 5
            simulator.run(max_cycles=10_000, fastpath=fastpath)
            states.append({
                key: value for key, value in vars(simulator.state).items()
                if key not in ("input_fn", "output_fn")
            })
        assert states[0] == states[1]


class TestMultiPage:
    def test_multipage_kernel_with_mmu(self):
        # Calculator on flexicore4 spans three pages, so the run
        # exercises MMU page switches (table swaps on the fast path).
        target = Target.named("flexicore4")
        kernel = next(k for k in SUITE if k.name == "Calculator")
        program = kernel.program(target)
        assert len(program.image()) > 128
        rng = np.random.default_rng(11)
        inputs = kernel.generate_inputs(rng, 8)
        ref, fast = assert_equivalent(program, inputs=inputs)
        assert ref.stats.page_switches > 0
        assert fast.stats.page_switches == ref.stats.page_switches

    def test_ldb_two_byte_instructions(self):
        # FlexiCore8's 2-byte LOAD BYTE is the one variable-size case.
        program = assemble(
            "ldb 200\nstore 1\nldb -3\nstore 1\nnandi 0\nstop: brn stop\n",
            get_isa("flexicore8"),
        )
        (_, ref_sink), (fast_result, fast_sink) = run_both(program)
        assert fast_sink.values == ref_sink.values
        assert fast_result.stats.by_size[2] == 2


class TestEdgeConditions:
    def test_input_exhaustion_identical(self):
        program = assemble(
            "loop: load 0\nstore 1\nnandi 0\nbrn loop\n",
            get_isa("flexicore4"),
        )
        ref, fast = assert_equivalent(program, inputs=[3, 9, 12])
        assert ref.reason == "input_exhausted"
        # The exhausted read's instruction is not retired on either path.
        assert fast.stats.instructions == ref.stats.instructions

    def test_max_cycles_truncation_identical(self):
        program = assemble(
            "loop: addi 1\nnandi 0\nbrn loop\n", get_isa("flexicore4"),
        )
        for budget in (0, 1, 7, 100):
            ref, fast = assert_equivalent(program, max_cycles=budget)
            assert ref.reason == "max_cycles"
            assert fast.stats.instructions == budget

    def test_decode_fault_message_identical(self):
        # 0x08 is an undefined flexicore4 opcode; both paths must fault
        # with the same message (the fast path raises lazily from the
        # table, only when the PC actually lands on the bad offset).
        isa = get_isa("flexicore4")
        image = bytes([0x08])
        messages = []
        for fastpath in (False, True):
            with pytest.raises(SimulationError) as excinfo:
                run_program(image, isa=isa, fastpath=fastpath)
            messages.append(str(excinfo.value))
        assert messages[0] == messages[1]
        assert "decode fault at page address 0" in messages[0]

    def test_self_branch_halt_identical(self):
        program = assemble(
            "nandi 0\nstop: brn stop\n", get_isa("flexicore4"),
        )
        ref, fast = assert_equivalent(program)
        assert fast.reason == ref.reason == "self_branch"

    def test_halt_on_self_branch_disabled(self):
        program = assemble(
            "nandi 0\nstop: brn stop\n", get_isa("flexicore4"),
        )
        for fastpath in (False, True):
            simulator = Simulator(
                get_isa("flexicore4"), program, halt_on_self_branch=False,
            )
            result = simulator.run(max_cycles=50, fastpath=fastpath)
            assert result.reason == "max_cycles"
            assert result.instructions == 50


class TestDispatchRegistry:
    def test_registry_has_both_paths(self):
        assert resolve_dispatch("reference") is not None
        assert resolve_dispatch("predecode") is not None

    def test_unknown_dispatch_rejected(self):
        with pytest.raises(ValueError, match="unknown dispatch"):
            resolve_dispatch("turbo")
        with pytest.raises(ValueError, match="unknown dispatch"):
            configure_dispatch("turbo")

    def test_default_is_predecode(self):
        assert default_dispatch() == "predecode"

    def test_configure_overrides_default(self):
        try:
            assert configure_dispatch("reference") == "reference"
            assert default_dispatch() == "reference"
        finally:
            configure_dispatch(None)
        assert default_dispatch() == "predecode"

    def test_environment_overrides_default(self):
        os.environ["REPRO_SIM_DISPATCH"] = "reference"
        try:
            assert default_dispatch() == "reference"
        finally:
            del os.environ["REPRO_SIM_DISPATCH"]

    def test_run_rejects_unknown_dispatch(self):
        program = assemble("nandi 0\nstop: brn stop\n",
                           get_isa("flexicore4"))
        simulator = Simulator(get_isa("flexicore4"), program)
        with pytest.raises(ValueError, match="unknown dispatch"):
            simulator.run(dispatch="turbo")


class TestPredecodeTables:
    def test_cache_returns_same_program(self):
        isa = get_isa("flexicore4")
        image = assemble("nandi 0\nstop: brn stop\n", isa).image()
        clear_predecode_cache()
        first = predecode_image(isa, image)
        second = predecode_image(isa, image)
        assert first is second

    def test_out_of_image_pages_share_zero_table(self):
        isa = get_isa("flexicore4")
        image_a = assemble("addi 1\nstop: brn stop\n", isa).image()
        image_b = assemble("addi 2\nstop: brn stop\n", isa).image()
        clear_predecode_cache()
        a = predecode_image(isa, image_a)
        b = predecode_image(isa, image_b)
        assert len(a.pages) == len(b.pages) == 16
        assert a.pages[15] is b.pages[15]

    def test_table_matches_reference_decode(self):
        isa = get_isa("flexicore4")
        program = directed_program(isa)
        image = program.image()
        table = predecode_image(isa, image).page(0)
        padded = image + bytes(4)
        for offset in range(min(len(image), 125)):
            decoded = isa.decode(padded, offset)
            assert table.decoded[offset] is not None
            assert table.decoded[offset].mnemonic == decoded.mnemonic
            assert table.decoded[offset].operands == decoded.operands
            assert table.decoded[offset].address == offset
            assert table.sizes[offset] == decoded.size

    def test_iport_flag_matches_replay_predicate(self):
        from repro.isa.state import IPORT_ADDR

        assert _IPORT_ADDR == IPORT_ADDR
        isa = get_isa("flexicore4")
        image = assemble("load 0\nstore 1\nstore 0\nadd 0\n", isa).image()
        table = predecode_image(isa, image).page(0)
        # load 0 reads the port; store-to-0 does not; add 0 does.
        assert table.reads_iport[0] is True
        assert table.reads_iport[1] is False
        assert table.reads_iport[2] is False
        assert table.reads_iport[3] is True


class TestCrossCheckFastpath:
    def test_cross_check_replay_identical(self):
        from repro.netlist.cores import build_core
        from repro.netlist.verify import run_cross_check

        isa = get_isa("flexicore4")
        netlist = build_core("flexicore4")
        program = directed_program(isa)
        rng = np.random.default_rng(3)
        inputs = [int(rng.integers(0, 16)) for _ in range(48)]
        ref = run_cross_check(
            netlist, isa, program, inputs=inputs,
            max_instructions=150, fastpath=False,
        )
        fast = run_cross_check(
            netlist, isa, program, inputs=inputs,
            max_instructions=150, fastpath=True,
        )
        assert (fast.cycles, fast.mismatches, fast.first_mismatch,
                fast.toggle_fraction, fast.mean_toggles) == \
               (ref.cycles, ref.mismatches, ref.first_mismatch,
                ref.toggle_fraction, ref.mean_toggles)
        assert fast.passed


class TestJobVersions:
    def test_wafer_jobs_bumped_for_batched_draws(self):
        from repro.fab.yield_model import probed_wafer_job, wafer_yield_job

        assert wafer_yield_job.__engine_version__ == "2"
        assert probed_wafer_job.__engine_version__ == "2"
