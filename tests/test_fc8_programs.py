"""Native FlexiCore8 demonstration programs vs their golden models."""

import numpy as np
import pytest

from repro.kernels import fc8_programs as fc8
from repro.sim import run_program


def run(program, inputs):
    result, sink = run_program(program, inputs=inputs,
                               max_cycles=200_000)
    return sink.values


class TestParity8:
    def test_sampled_bytes(self):
        inputs = list(range(0, 256, 11))
        got = run(fc8.parity8_program(), inputs)
        assert got == fc8.parity8_reference(inputs)

    def test_single_read_per_byte(self):
        """FlexiCore8 reads the whole octet at once (vs two nibble reads
        on FlexiCore4)."""
        program = fc8.parity8_program()
        result, sink = run_program(program, inputs=[0xFF, 0x00])
        assert sink.values == [0, 0]
        assert result.stats.io_reads == 3  # 2 words + the failing read

    def test_fits_one_page(self):
        assert fc8.parity8_program().size_bytes <= 128


class TestChecksum8:
    def test_running_sum(self):
        rng = np.random.default_rng(4)
        inputs = [int(rng.integers(0, 256)) for _ in range(24)]
        got = run(fc8.checksum_program(), inputs)
        assert got == fc8.checksum_reference(inputs)

    def test_seed_loaded_with_ldb(self):
        program = fc8.checksum_program()
        assert program.mnemonic_histogram().get("ldb") == 1
        assert run(program, [0]) == [0xA5]

    def test_wraps_mod_256(self):
        got = run(fc8.checksum_program(), [0xFF, 0xFF])
        assert got == [(0xA5 + 0xFF) & 0xFF, (0xA5 + 0x1FE) & 0xFF]


class TestScaleClip8:
    @pytest.mark.parametrize("value", [0, 50, 192, 193, 200, 250, 255])
    def test_boundary_values(self, value):
        got = run(fc8.scale_clip_program(), [value])
        assert got == fc8.scale_clip_reference([value])

    def test_random_stream(self):
        rng = np.random.default_rng(9)
        inputs = [int(rng.integers(0, 256)) for _ in range(40)]
        got = run(fc8.scale_clip_program(), inputs)
        assert got == fc8.scale_clip_reference(inputs)

    def test_clipping_engages(self):
        outputs = fc8.scale_clip_reference([255])
        assert outputs == [min((255 + 7) & 0xFF, 0xC8)]


class TestOnGateLevelSilicon:
    """The FC8 demos also run on the gate-level netlist."""

    def test_checksum_cross_check(self):
        from repro.isa import get_isa
        from repro.netlist import build_flexicore8, run_cross_check

        isa = get_isa("flexicore8")
        result = run_cross_check(
            build_flexicore8(), isa, fc8.checksum_program(),
            inputs=[1, 2, 3, 250], max_instructions=60,
        )
        assert result.passed, result.first_mismatch
