"""FlexiCore4 ISA: encodings of Figure 2a and instruction semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import DecodeError, OperandRangeError, get_isa

ISA = get_isa("flexicore4")


def decode1(byte):
    return ISA.decode(bytes([byte]))


def execute(mnemonic, operands, acc=0, mem=None, pc=0, input_value=0):
    state = ISA.new_state()
    state.acc = acc
    state.pc = pc
    if mem:
        for addr, value in mem.items():
            state.mem[addr] = value
    state.input_fn = lambda: input_value
    decoded = ISA.decode(ISA.encode(mnemonic, operands))
    ISA.execute(state, decoded)
    return state


class TestEncodingMatchesFigure2a:
    """Bit-exact checks against the published instruction formats."""

    def test_branch_format(self):
        assert ISA.encode("brn", (0x55,)) == bytes([0b1101_0101])

    def test_itype_add(self):
        assert ISA.encode("addi", (0b0011,)) == bytes([0b0100_0011])

    def test_itype_nand(self):
        assert ISA.encode("nandi", (0,)) == bytes([0b0101_0000])

    def test_itype_xor(self):
        assert ISA.encode("xori", (0xF,)) == bytes([0b0110_1111])

    def test_mtype_ops_have_bit6_clear(self):
        for mnemonic, op in (("add", 0), ("nand", 1), ("xor", 2)):
            byte = ISA.encode(mnemonic, (5,))[0]
            assert byte >> 6 == 0
            assert (byte >> 4) & 0b11 == op
            assert byte & 0b111 == 5

    def test_ttype_load_store(self):
        assert ISA.encode("load", (3,)) == bytes([0b0111_0011])
        assert ISA.encode("store", (3,)) == bytes([0b0111_1011])

    def test_bits_5_4_drive_alu_select(self):
        # Section 3.3: instruction bits 5:4 wire to the ALU output mux.
        assert (ISA.encode("addi", (0,))[0] >> 4) & 0b11 == 0b00
        assert (ISA.encode("nandi", (0,))[0] >> 4) & 0b11 == 0b01
        assert (ISA.encode("xori", (0,))[0] >> 4) & 0b11 == 0b10

    def test_negative_immediates_accepted(self):
        assert ISA.encode("addi", (-3,)) == ISA.encode("addi", (13,))

    def test_operand_range_errors(self):
        with pytest.raises(OperandRangeError):
            ISA.encode("brn", (128,))
        with pytest.raises(OperandRangeError):
            ISA.encode("load", (8,))
        with pytest.raises(OperandRangeError):
            ISA.encode("addi", (16,))


class TestDecode:
    def test_every_instruction_roundtrips(self):
        for mnemonic in ISA.mnemonics():
            spec = ISA.spec(mnemonic)
            operands = tuple(op.lo if op.lo >= 0 else 1
                             for op in spec.operands)
            encoded = ISA.encode(mnemonic, operands)
            decoded = ISA.decode(encoded)
            assert decoded.mnemonic == mnemonic
            assert decoded.spec.encode(decoded.operands) == encoded

    def test_exhaustive_byte_space(self):
        """Every byte either decodes and re-encodes to itself, or is a
        documented hole (M-type op=11 or bit3 set)."""
        for byte in range(256):
            try:
                decoded = decode1(byte)
            except DecodeError:
                assert byte & 0xC0 == 0  # only M-type space has holes
                assert (byte & 0b1000) or ((byte >> 4) & 0b11) == 0b11
                continue
            assert decoded.spec.encode(decoded.operands) == bytes([byte])

    def test_branch_decodes_target(self):
        decoded = decode1(0b1000_1010)
        assert decoded.mnemonic == "brn"
        assert decoded.operands == (0b000_1010,)


class TestSemantics:
    @given(st.integers(0, 15), st.integers(0, 15))
    def test_addi(self, acc, imm):
        state = execute("addi", (imm,), acc=acc)
        assert state.acc == (acc + imm) & 0xF
        assert state.pc == 1

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_nandi(self, acc, imm):
        state = execute("nandi", (imm,), acc=acc)
        assert state.acc == (~(acc & imm)) & 0xF

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_xori(self, acc, imm):
        state = execute("xori", (imm,), acc=acc)
        assert state.acc == acc ^ imm

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_memory_operand_ops(self, acc, value):
        state = execute("add", (3,), acc=acc, mem={3: value})
        assert state.acc == (acc + value) & 0xF
        state = execute("nand", (3,), acc=acc, mem={3: value})
        assert state.acc == (~(acc & value)) & 0xF
        state = execute("xor", (3,), acc=acc, mem={3: value})
        assert state.acc == acc ^ value

    def test_load_store(self):
        state = execute("load", (4,), mem={4: 9})
        assert state.acc == 9
        state = execute("store", (4,), acc=7)
        assert state.mem[4] == 7

    def test_load_address_zero_reads_input_port(self):
        state = execute("load", (0,), input_value=0xC)
        assert state.acc == 0xC
        assert state.io_reads == 1

    def test_alu_with_address_zero_reads_input_port(self):
        state = execute("add", (0,), acc=1, input_value=2)
        assert state.acc == 3

    def test_store_address_one_drives_output(self):
        outputs = []
        state = ISA.new_state()
        state.acc = 0xB
        state.output_fn = outputs.append
        decoded = ISA.decode(ISA.encode("store", (1,)))
        ISA.execute(state, decoded)
        assert outputs == [0xB]

    @given(st.integers(0, 15), st.integers(0, 127))
    def test_branch_on_msb_only(self, acc, target):
        state = execute("brn", (target,), acc=acc, pc=10)
        if acc & 0x8:
            assert state.pc == target
        else:
            assert state.pc == 11

    def test_pc_wraps_at_seven_bits(self):
        state = execute("addi", (0,), pc=127)
        assert state.pc == 0

    def test_no_carry_flag_architected(self):
        state = execute("addi", (15,), acc=15)
        assert state.acc == 14
        assert state.carry == 0  # the base ISA never sets carry
