"""Sequence-level fuzzing against independent oracle interpreters.

Per-instruction semantics are covered elsewhere; here a second,
deliberately simple Python interpreter executes random *sequences* of
straight-line instructions and must agree with the real decoder +
simulator on the final architectural state.  This catches state-coupling
bugs (carry staleness, memory aliasing, immediate extension) that
single-instruction tests cannot.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import assemble
from repro.isa import bits, get_isa
from repro.sim import Simulator

EXT = get_isa("extacc")
LS = get_isa("loadstore")

# -- extended-accumulator oracle -----------------------------------------

EXT_OPS = st.one_of(
    st.tuples(st.just("addi"), st.integers(0, 15)),
    st.tuples(st.just("nandi"), st.integers(0, 15)),
    st.tuples(st.just("xori"), st.integers(0, 15)),
    st.tuples(st.just("andi"), st.integers(0, 15)),
    st.tuples(st.just("ori"), st.integers(0, 15)),
    st.tuples(st.just("adci"), st.integers(0, 15)),
    st.tuples(st.just("add"), st.integers(2, 7)),
    st.tuples(st.just("adc"), st.integers(2, 7)),
    st.tuples(st.just("sub"), st.integers(2, 7)),
    st.tuples(st.just("swb"), st.integers(2, 7)),
    st.tuples(st.just("and"), st.integers(2, 7)),
    st.tuples(st.just("or"), st.integers(2, 7)),
    st.tuples(st.just("xor"), st.integers(2, 7)),
    st.tuples(st.just("nand"), st.integers(2, 7)),
    st.tuples(st.just("load"), st.integers(2, 7)),
    st.tuples(st.just("store"), st.integers(2, 7)),
    st.tuples(st.just("xch"), st.integers(2, 7)),
    st.tuples(st.just("lsri"), st.integers(1, 3)),
    st.tuples(st.just("asri"), st.integers(1, 3)),
    st.tuples(st.just("neg"), st.none()),
)


def ext_oracle(sequence):
    """Independent interpretation of a straight-line extacc sequence."""
    acc, carry = 0, 0
    mem = [0] * 8

    def add(a, b, c):
        total = a + b + c
        return total & 0xF, total >> 4

    for mnemonic, operand in sequence:
        if mnemonic == "addi":
            acc, carry = add(acc, operand, 0)
        elif mnemonic == "adci":
            acc, carry = add(acc, operand, carry)
        elif mnemonic == "nandi":
            acc = ~(acc & operand) & 0xF
        elif mnemonic == "xori":
            acc ^= operand
        elif mnemonic == "andi":
            acc &= operand
        elif mnemonic == "ori":
            acc |= operand
        elif mnemonic == "add":
            acc, carry = add(acc, mem[operand], 0)
        elif mnemonic == "adc":
            acc, carry = add(acc, mem[operand], carry)
        elif mnemonic == "sub":
            total = acc - mem[operand]
            acc, carry = total & 0xF, (1 if total >= 0 else 0)
        elif mnemonic == "swb":
            total = acc - mem[operand] - (1 - carry)
            acc, carry = total & 0xF, (1 if total >= 0 else 0)
        elif mnemonic == "and":
            acc &= mem[operand]
        elif mnemonic == "or":
            acc |= mem[operand]
        elif mnemonic == "xor":
            acc ^= mem[operand]
        elif mnemonic == "nand":
            acc = ~(acc & mem[operand]) & 0xF
        elif mnemonic == "load":
            acc = mem[operand]
        elif mnemonic == "store":
            mem[operand] = acc
        elif mnemonic == "xch":
            acc, mem[operand] = mem[operand], acc
        elif mnemonic == "lsri":
            acc >>= operand
        elif mnemonic == "asri":
            acc = (bits.sign_extend(acc, 4) >> operand) & 0xF
        elif mnemonic == "neg":
            acc = (-acc) & 0xF
    return acc, carry, mem


class TestExtAccOracle:
    @settings(max_examples=150, deadline=None)
    @given(st.lists(EXT_OPS, min_size=1, max_size=25))
    def test_sequences_agree(self, sequence):
        source = "\n".join(
            mnemonic if operand is None else f"{mnemonic} {operand}"
            for mnemonic, operand in sequence
        ) + "\nhalt\n"
        program = assemble(source, EXT)
        simulator = Simulator(EXT, program)
        simulator.run(max_cycles=1000)
        acc, carry, mem = ext_oracle(sequence)
        state = simulator.state
        assert state.acc == acc
        assert state.carry == carry
        # Words 2..7 must match; 0/1 are IO-mapped and excluded.
        assert list(state.mem[2:]) == mem[2:]


# -- load-store oracle ------------------------------------------------------

LS_OPS = st.one_of(
    st.tuples(st.just("movi"), st.integers(1, 7), st.integers(0, 255)),
    st.tuples(st.just("addi"), st.integers(1, 7), st.integers(0, 255)),
    st.tuples(st.just("adci"), st.integers(1, 7), st.integers(0, 255)),
    st.tuples(st.just("andi"), st.integers(1, 7), st.integers(0, 255)),
    st.tuples(st.just("ori"), st.integers(1, 7), st.integers(0, 255)),
    st.tuples(st.just("xori"), st.integers(1, 7), st.integers(0, 255)),
    st.tuples(st.just("add"), st.integers(1, 7), st.integers(1, 7)),
    st.tuples(st.just("adc"), st.integers(1, 7), st.integers(1, 7)),
    st.tuples(st.just("sub"), st.integers(1, 7), st.integers(1, 7)),
    st.tuples(st.just("swb"), st.integers(1, 7), st.integers(1, 7)),
    st.tuples(st.just("and"), st.integers(1, 7), st.integers(1, 7)),
    st.tuples(st.just("or"), st.integers(1, 7), st.integers(1, 7)),
    st.tuples(st.just("xor"), st.integers(1, 7), st.integers(1, 7)),
    st.tuples(st.just("mov"), st.integers(1, 7), st.integers(1, 7)),
    st.tuples(st.just("xch"), st.integers(1, 7), st.integers(1, 7)),
    st.tuples(st.just("mull"), st.integers(1, 7), st.integers(1, 7)),
    st.tuples(st.just("mulh"), st.integers(1, 7), st.integers(1, 7)),
    st.tuples(st.just("lsri"), st.integers(1, 7), st.integers(1, 3)),
    st.tuples(st.just("asri"), st.integers(1, 7), st.integers(1, 3)),
    st.tuples(st.just("neg"), st.integers(1, 7), st.none()),
)


def ls_oracle(sequence):
    regs = [0] * 8
    carry = 0

    def add(a, b, c):
        total = a + b + c
        return total & 0xF, total >> 4

    for mnemonic, rd, operand in sequence:
        rs_value = regs[operand] if isinstance(operand, int) \
            and mnemonic in ("add", "adc", "sub", "swb", "and", "or",
                             "xor", "mov", "xch", "mull", "mulh") else None
        if mnemonic == "movi":
            regs[rd] = operand & 0xF
        elif mnemonic == "addi":
            regs[rd], carry = add(regs[rd], operand & 0xF, 0)
        elif mnemonic == "adci":
            regs[rd], carry = add(regs[rd], operand & 0xF, carry)
        elif mnemonic == "andi":
            regs[rd] &= operand & 0xF
        elif mnemonic == "ori":
            regs[rd] |= operand & 0xF
        elif mnemonic == "xori":
            regs[rd] ^= operand & 0xF
        elif mnemonic == "add":
            regs[rd], carry = add(regs[rd], rs_value, 0)
        elif mnemonic == "adc":
            regs[rd], carry = add(regs[rd], rs_value, carry)
        elif mnemonic == "sub":
            total = regs[rd] - rs_value
            regs[rd], carry = total & 0xF, (1 if total >= 0 else 0)
        elif mnemonic == "swb":
            total = regs[rd] - rs_value - (1 - carry)
            regs[rd], carry = total & 0xF, (1 if total >= 0 else 0)
        elif mnemonic == "and":
            regs[rd] &= rs_value
        elif mnemonic == "or":
            regs[rd] |= rs_value
        elif mnemonic == "xor":
            regs[rd] ^= rs_value
        elif mnemonic == "mov":
            regs[rd] = rs_value
        elif mnemonic == "xch":
            regs[rd], regs[operand] = regs[operand], regs[rd]
        elif mnemonic == "mull":
            regs[rd] = (regs[rd] * rs_value) & 0xF
        elif mnemonic == "mulh":
            regs[rd] = (regs[rd] * rs_value) >> 4
        elif mnemonic == "lsri":
            regs[rd] >>= operand
        elif mnemonic == "asri":
            regs[rd] = (bits.sign_extend(regs[rd], 4) >> operand) & 0xF
        elif mnemonic == "neg":
            regs[rd] = (-regs[rd]) & 0xF
    return regs, carry


class TestLoadStoreOracle:
    @settings(max_examples=150, deadline=None)
    @given(st.lists(LS_OPS, min_size=1, max_size=25))
    def test_sequences_agree(self, sequence):
        def render(mnemonic, rd, operand):
            if operand is None:
                return f"{mnemonic} r{rd}"
            if mnemonic in ("movi", "addi", "adci", "andi", "ori",
                            "xori", "lsri", "asri"):
                return f"{mnemonic} r{rd}, {operand}"
            return f"{mnemonic} r{rd}, r{operand}"

        source = "\n".join(render(*op) for op in sequence) + "\nhalt\n"
        program = assemble(source, LS)
        simulator = Simulator(LS, program)
        simulator.run(max_cycles=1000)
        regs, carry = ls_oracle(sequence)
        assert list(simulator.state.mem) == regs
        assert simulator.state.carry == carry
