"""Engine-backed experiment paths: parallel == serial, cache == fresh.

These are the acceptance tests of the execution engine rewiring: the
Figure 6/7 wafers, the yield Monte Carlo, and the DSE sweep must produce
*bit-for-bit* identical results whether they run serially, over a
process pool, or out of the on-disk result cache.
"""

import dataclasses

import pytest

from repro.dse.designs import ALL_DESIGNS
from repro.dse.evaluate import evaluate_all
from repro.engine import Engine, spawn_seeds
from repro.experiments.figures import engine_wafer_provider
from repro.fab.process import FC4_WAFER, FC8_WAFER
from repro.fab.yield_model import run_yield_study
from repro.netlist.cores import build_flexicore4


def _probe_fingerprint(probe):
    """Everything Figure 6/7 reads from one probed wafer."""
    return (
        probe.voltage,
        probe.error_map(),
        probe.current_map(),
        [record.functional for record in probe.records],
        [record.failure_mode for record in probe.records],
    )


class TestWaferFiguresParallelEqualsSerial:
    @pytest.fixture(scope="class")
    def serial_wafers(self):
        return engine_wafer_provider(2022, engine=Engine(jobs=1))

    @pytest.fixture(scope="class")
    def parallel_wafers(self):
        return engine_wafer_provider(2022, engine=Engine(jobs=2))

    def test_same_cores(self, serial_wafers, parallel_wafers):
        assert set(serial_wafers) == set(parallel_wafers) == \
            {"FlexiCore4", "FlexiCore8"}

    def test_probes_bit_for_bit(self, serial_wafers, parallel_wafers):
        for core in serial_wafers:
            for voltage in (3.0, 4.5):
                assert _probe_fingerprint(serial_wafers[core][voltage]) \
                    == _probe_fingerprint(parallel_wafers[core][voltage])

    def test_fabricated_dies_bit_for_bit(self, serial_wafers,
                                         parallel_wafers):
        for core in serial_wafers:
            serial_dies = serial_wafers[core]["fabricated"].dies
            parallel_dies = parallel_wafers[core]["fabricated"].dies
            assert [
                (d.defects, d.speed_factor, d.current_factor)
                for d in serial_dies
            ] == [
                (d.defects, d.speed_factor, d.current_factor)
                for d in parallel_dies
            ]

    def test_cached_rerun_identical(self, serial_wafers, tmp_path):
        cold = engine_wafer_provider(
            2022, engine=Engine(jobs=1, cache=tmp_path)
        )
        warm_engine = Engine(jobs=1, cache=tmp_path)
        warm = engine_wafer_provider(2022, engine=warm_engine)
        assert warm_engine.metrics.cache_hits == 2
        for core in serial_wafers:
            for voltage in (3.0, 4.5):
                assert _probe_fingerprint(serial_wafers[core][voltage]) \
                    == _probe_fingerprint(cold[core][voltage]) \
                    == _probe_fingerprint(warm[core][voltage])


class TestYieldStudyParallelEqualsSerial:
    @pytest.fixture(scope="class")
    def netlist(self):
        return build_flexicore4()

    def test_parallel_equals_serial(self, netlist):
        serial = run_yield_study(
            netlist, FC4_WAFER, wafers=6, seed=2022,
            engine=Engine(jobs=1),
        )
        parallel = run_yield_study(
            netlist, FC4_WAFER, wafers=6, seed=2022,
            engine=Engine(jobs=3),
        )
        assert serial == parallel

    def test_wafer_order_independent_prefix(self, netlist):
        """Child seeds make each wafer's draw independent of the wafer
        count, so a longer study extends -- not reshuffles -- a shorter
        one.  (The threaded-rng legacy path cannot satisfy this.)"""
        short = run_yield_study(
            netlist, FC4_WAFER, wafers=2, seed=7, engine=Engine(jobs=1),
        )
        first_two_of_long = run_yield_study(
            netlist, FC4_WAFER, wafers=2, seed=7, engine=Engine(jobs=2),
        )
        assert short == first_two_of_long

    def test_cached_rerun_identical(self, netlist, tmp_path):
        cold = run_yield_study(
            netlist, FC4_WAFER, wafers=4, seed=11,
            engine=Engine(jobs=1, cache=tmp_path),
        )
        warm_engine = Engine(jobs=1, cache=tmp_path)
        warm = run_yield_study(
            netlist, FC4_WAFER, wafers=4, seed=11, engine=warm_engine,
        )
        assert cold == warm
        assert warm_engine.metrics.cache_hits == 4
        assert warm_engine.metrics.cache_misses == 0

    def test_seed_changes_cache_entries(self, netlist, tmp_path):
        engine = Engine(jobs=1, cache=tmp_path)
        run_yield_study(netlist, FC4_WAFER, wafers=2, seed=1,
                        engine=engine)
        run_yield_study(netlist, FC4_WAFER, wafers=2, seed=2,
                        engine=engine)
        assert engine.metrics.cache_hits == 0
        assert engine.cache.stats()["entries"] == 4

    def test_process_changes_cache_entries(self, netlist, tmp_path):
        """Different wafer processes must never share cache entries."""
        engine = Engine(jobs=1, cache=tmp_path)
        fc4 = run_yield_study(netlist, FC4_WAFER, wafers=2, seed=1,
                              engine=engine)
        fc8_process = run_yield_study(netlist, FC8_WAFER, wafers=2,
                                      seed=1, engine=engine)
        assert engine.metrics.cache_hits == 0
        assert fc4 != fc8_process

    def test_legacy_rng_path_still_works(self, netlist):
        import numpy as np

        summary = run_yield_study(
            netlist, FC4_WAFER, np.random.default_rng(3), wafers=2
        )
        assert set(summary) == {3.0, 4.5}

    def test_unregistered_core_rejected_on_engine_path(self):
        class FakeNetlist:
            name = "mystery-core"

        with pytest.raises(ValueError):
            run_yield_study(FakeNetlist(), FC4_WAFER, wafers=1, seed=1)

    def test_requires_seed_or_rng(self, netlist):
        with pytest.raises(TypeError):
            run_yield_study(netlist, FC4_WAFER, wafers=1)


def _metrics_fingerprint(metrics):
    """DesignMetrics flattened to plain comparable values."""
    flat = dataclasses.asdict(metrics)
    flat["design"] = metrics.design.name
    return flat


class TestEvaluateAllParallelEqualsSerial:
    @pytest.fixture(scope="class")
    def serial(self):
        return evaluate_all(engine=Engine(jobs=1))

    def test_parallel_equals_serial(self, serial):
        parallel = evaluate_all(engine=Engine(jobs=4))
        assert set(serial) == set(parallel)
        for name in serial:
            assert _metrics_fingerprint(serial[name]) == \
                _metrics_fingerprint(parallel[name])

    def test_cached_rerun_identical(self, serial, tmp_path):
        cold_engine = Engine(jobs=1, cache=tmp_path)
        cold = evaluate_all(engine=cold_engine)
        assert cold_engine.metrics.cache_misses == len(ALL_DESIGNS)
        warm_engine = Engine(jobs=1, cache=tmp_path)
        warm = evaluate_all(engine=warm_engine)
        assert warm_engine.metrics.cache_hits == len(ALL_DESIGNS)
        for name in serial:
            assert _metrics_fingerprint(serial[name]) == \
                _metrics_fingerprint(cold[name]) == \
                _metrics_fingerprint(warm[name])

    def test_bus_restriction_gets_own_cache_entries(self, tmp_path):
        engine = Engine(jobs=1, cache=tmp_path)
        wide = evaluate_all(engine=engine)
        narrow = evaluate_all(engine=engine, bus_bits=8)
        assert engine.metrics.cache_hits == 0
        assert wide["LS SC"].kernels["IntAvg"].feasible
        assert not narrow["LS SC"].kernels["IntAvg"].feasible


class TestTableFigureConsistency:
    def test_yield_summaries_match_direct_study(self):
        """tables._yield_summaries must agree with calling
        run_yield_study directly under the same spawned seeds."""
        from repro.experiments.tables import _netlists, _yield_summaries

        fc4_seed, _ = spawn_seeds(2022, 2)
        direct = run_yield_study(
            _netlists()["flexicore4"], FC4_WAFER, wafers=6,
            seed=fc4_seed, engine=Engine(jobs=2),
        )
        assert _yield_summaries()["FlexiCore4"] == direct
