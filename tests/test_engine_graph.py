"""The dependency-graph layer: ordering, injection, failure, cancel."""

import threading
import time

import pytest

from repro.engine import (
    Engine,
    EngineCancelled,
    EngineJobError,
    GraphError,
    Job,
    ResultCache,
    job_function,
    retry_delay_s,
    spawn_seeds,
)
from repro.engine.graph import CANCELLED, DONE, FAILED

#: Execution order observed by the serial graph jobs (jobs=1 keeps
#: everything in-process, so a plain list is a faithful recorder).
_ORDER = []


@job_function("graphtest.record", version="1")
def record_job(params, seed):
    _ORDER.append(params["name"])
    return params["name"]


@job_function("graphtest.add", version="1")
def add_job(params, seed):
    return params.get("base", 0) + sum(params.get("inputs", ()))


@job_function("graphtest.double", version="1")
def double_job(params, seed):
    return 2 * params["value"]


@job_function("graphtest.fail", version="1")
def fail_job(params, seed):
    raise ValueError("deliberate graph failure")


@job_function("graphtest.slow", version="1")
def slow_value_job(params, seed):
    time.sleep(params.get("delay", 0.0))
    return params["value"]


class TestGraphOrdering:
    def setup_method(self):
        _ORDER.clear()

    def test_dependency_runs_first(self):
        engine = Engine(jobs=1)
        first = engine.submit(Job(record_job, {"name": "first"}))
        engine.submit(Job(record_job, {"name": "second"}),
                      deps=[first])
        engine.run_graph()
        assert _ORDER == ["first", "second"]

    def test_diamond_order_respects_edges(self):
        engine = Engine(jobs=1)
        top = engine.submit(Job(record_job, {"name": "top"}))
        left = engine.submit(Job(record_job, {"name": "left"}),
                             deps=[top])
        right = engine.submit(Job(record_job, {"name": "right"}),
                              deps=[top])
        engine.submit(Job(record_job, {"name": "join"}),
                      deps=[left, right])
        engine.run_graph()
        assert _ORDER[0] == "top"
        assert _ORDER[-1] == "join"
        assert set(_ORDER[1:3]) == {"left", "right"}

    def test_results_in_submission_order(self):
        engine = Engine(jobs=1)
        b = engine.submit(Job(double_job, {"value": 2}))
        a = engine.submit(Job(double_job, {"value": 1}), deps=[b])
        results = engine.run_graph()
        assert results == [4, 2]
        assert a.status == DONE and b.status == DONE

    def test_empty_graph_is_a_noop(self):
        assert Engine(jobs=1).run_graph() == []


class TestResultInjection:
    def test_single_node_injects_bare_result(self):
        engine = Engine(jobs=1)
        source = engine.submit(Job(double_job, {"value": 21}))
        sink = engine.submit(Job(double_job, {}),
                             deps={"value": source})
        engine.run_graph()
        assert sink.result == 84

    def test_node_list_injects_result_list(self):
        engine = Engine(jobs=1)
        parents = [
            engine.submit(Job(double_job, {"value": value}))
            for value in (1, 2, 3)
        ]
        sink = engine.submit(Job(add_job, {"base": 100}),
                             deps={"inputs": parents})
        engine.run_graph()
        assert sink.result == 100 + 2 + 4 + 6

    def test_injected_deps_widen_cache_key(self):
        engine = Engine(jobs=1)
        parent = engine.submit(Job(double_job, {"value": 1}))
        injected = engine.submit(Job(add_job, {"base": 0}),
                                 deps={"inputs": [parent]})
        ordering = engine.submit(Job(add_job, {"base": 0}),
                                 deps=[parent])
        plain = engine.submit(Job(add_job, {"base": 0}))
        # Ordering-only deps leave the address alone; injection widens.
        assert ordering.key == plain.key
        assert injected.key != plain.key
        engine.run_graph()

    def test_mixed_graph_runs_across_engine_runs(self):
        """Nodes resolved by a previous run_graph serve as deps."""
        engine = Engine(jobs=1)
        parent = engine.submit(Job(double_job, {"value": 5}))
        engine.run_graph()
        child = engine.submit(Job(double_job, {}),
                              deps={"value": parent})
        engine.run_graph()
        assert child.result == 20


class TestGraphFailure:
    def test_failing_upstream_cancels_dependents(self):
        engine = Engine(jobs=1, retries=0)
        bad = engine.submit(Job(fail_job, label="bad"))
        child = engine.submit(Job(double_job, {"value": 1}),
                              deps=[bad])
        grandchild = engine.submit(Job(double_job, {}),
                                   deps={"value": child})
        bystander = engine.submit(Job(double_job, {"value": 7}))
        with pytest.raises(EngineJobError):
            engine.run_graph()
        assert bad.status == FAILED
        assert child.status == CANCELLED
        assert grandchild.status == CANCELLED
        assert child.result is None and grandchild.result is None
        # The unrelated branch still ran to completion.
        assert bystander.status == DONE and bystander.result == 14
        assert engine.metrics.cancelled == 2
        assert engine.metrics.failures == 1

    def test_raise_on_error_false_returns_partial_results(self):
        engine = Engine(jobs=1, retries=0)
        bad = engine.submit(Job(fail_job, label="bad"))
        engine.submit(Job(double_job, {"value": 1}), deps=[bad])
        ok = engine.submit(Job(double_job, {"value": 3}))
        results = engine.run_graph(raise_on_error=False)
        assert results == [None, None, 6]
        assert ok.status == DONE

    def test_submitting_on_failed_dep_raises(self):
        engine = Engine(jobs=1, retries=0)
        bad = engine.submit(Job(fail_job, label="bad"))
        engine.run_graph(raise_on_error=False)
        with pytest.raises(GraphError):
            engine.submit(Job(double_job, {"value": 1}), deps=[bad])

    def test_cancelled_dependents_never_execute(self):
        _ORDER.clear()
        engine = Engine(jobs=1, retries=0)
        bad = engine.submit(Job(fail_job, label="bad"))
        engine.submit(Job(record_job, {"name": "never"}), deps=[bad])
        engine.run_graph(raise_on_error=False)
        assert _ORDER == []


class TestGraphCache:
    def test_second_graph_run_hits_cache(self, tmp_path):
        cold = Engine(jobs=1, cache=tmp_path)
        a = cold.submit(Job(double_job, {"value": 4}))
        cold.submit(Job(add_job, {"base": 1}), deps={"inputs": [a]})
        cold_results = cold.run_graph()

        warm = Engine(jobs=1, cache=tmp_path)
        a2 = warm.submit(Job(double_job, {"value": 4}))
        warm.submit(Job(add_job, {"base": 1}), deps={"inputs": [a2]})
        warm_results = warm.run_graph()
        assert warm_results == cold_results
        assert warm.metrics.cache_hits == 2
        assert warm.metrics.cache_misses == 0

    def test_uncached_node_stays_out_of_the_cache(self, tmp_path):
        engine = Engine(jobs=1, cache=tmp_path)
        a = engine.submit(Job(double_job, {"value": 4}))
        engine.submit(Job(add_job, {"base": 1}, cached=False),
                      deps={"inputs": [a]})
        engine.run_graph()
        assert engine.cache.stats()["entries"] == 1

    def test_cancel_mid_graph_leaves_cache_uncorrupted(self, tmp_path):
        """Cancelling between graph nodes must leave only complete,
        loadable cache entries behind (PR 5's crash-safety invariant
        holds through the graph path)."""
        engine = Engine(jobs=1, cache=tmp_path)
        release = threading.Event()

        def hook(event, payload):
            if event == "job_done":
                engine.cancel()
                release.set()

        engine.hooks.add(hook)
        for index, child in enumerate(spawn_seeds(5, 4)):
            engine.submit(Job(slow_value_job, {"value": index},
                              seed=child, label=f"slow{index}"))
        with pytest.raises(EngineCancelled):
            engine.run_graph()
        assert release.is_set()

        # Every on-disk entry is complete: meta beside data, loadable.
        cache = ResultCache(tmp_path)
        stats = cache.stats()
        data_files = [
            path for path in tmp_path.rglob("*.pkl")
            if path.is_file()
        ]
        assert stats["entries"] == len(data_files)
        for path in data_files:
            assert path.with_suffix(".json").exists()

        # A fresh engine finishes the same graph and reuses whatever
        # completed before the cancel.
        fresh = Engine(jobs=1, cache=tmp_path)
        nodes = [
            fresh.submit(Job(slow_value_job, {"value": index},
                             seed=child, label=f"slow{index}"))
            for index, child in enumerate(spawn_seeds(5, 4))
        ]
        results = fresh.run_graph()
        assert results == [0, 1, 2, 3]
        assert all(node.done for node in nodes)
        assert fresh.metrics.cache_hits >= 1


class TestGraphParallel:
    def test_parallel_graph_matches_serial(self):
        def build(engine):
            parents = [
                engine.submit(Job(double_job, {"value": value},
                                  label=f"p{value}"))
                for value in range(6)
            ]
            return engine.submit(Job(add_job, {"base": 1}),
                                 deps={"inputs": parents})

        serial = Engine(jobs=1)
        serial_sink = build(serial)
        serial.run_graph()
        parallel = Engine(jobs=3)
        parallel_sink = build(parallel)
        parallel.run_graph()
        parallel.close()
        assert serial_sink.result == parallel_sink.result == \
            1 + sum(2 * v for v in range(6))


class TestRetryJitter:
    def test_jitter_is_deterministic_per_job(self):
        job = Job(double_job, {"value": 1}, seed=3, label="jit")
        assert retry_delay_s(job, 1, 0.1) == retry_delay_s(job, 1, 0.1)

    def test_jitter_within_bounds_and_grows(self):
        job = Job(double_job, {"value": 1}, seed=3, label="jit")
        first = retry_delay_s(job, 1, 0.1)
        second = retry_delay_s(job, 2, 0.1)
        assert 0.075 <= first < 0.125
        assert 0.15 <= second < 0.25

    def test_different_jobs_desynchronize(self):
        delays = {
            retry_delay_s(Job(double_job, {"value": v}, seed=v,
                              label=f"jit{v}"), 1, 0.1)
            for v in range(8)
        }
        assert len(delays) > 1
