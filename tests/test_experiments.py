"""Experiment entry points: structured data sanity + formatting."""

import pytest

from repro.experiments import figures, paper_data, tables
from repro.experiments.report import ALL_EXPERIMENTS, headline_summary


class TestModuleTables:
    def test_table2_memory_dominates(self):
        rows = tables.table2()
        assert rows["memory"]["area_pct"] == max(
            rows[m]["area_pct"] for m in rows if m != "total"
        )
        assert rows["memory"]["area_pct"] > 40

    def test_table2_close_to_paper(self):
        rows = tables.table2()
        for module, paper in paper_data.TABLE2_AREA_PCT.items():
            assert abs(rows[module]["area_pct"] - paper) < 12, module

    def test_table3_alu_grows_on_flexicore8(self):
        fc4 = tables.table2()
        fc8 = tables.table3()
        assert fc8["alu"]["area_pct"] > fc4["alu"]["area_pct"]
        assert fc8["memory"]["area_pct"] < fc4["memory"]["area_pct"]

    def test_fractions_total_100(self):
        for rows in (tables.table2(), tables.table3()):
            assert rows["total"]["area_pct"] == pytest.approx(100.0)

    def test_comb_and_noncomb_sum(self):
        for rows in (tables.table2(), tables.table3()):
            for module, row in rows.items():
                assert row["noncomb_pct"] + row["comb_pct"] == \
                    pytest.approx(100.0)

    def test_alu_is_fully_combinational(self):
        assert tables.table2()["alu"]["noncomb_pct"] == 0.0


class TestTable4:
    def test_three_cores(self):
        rows = tables.table4()
        assert set(rows) == {"FlexiCore4", "FlexiCore8", "FlexiCore4+"}

    def test_device_counts_near_paper(self):
        rows = tables.table4()
        for name, row in rows.items():
            paper = paper_data.TABLE4[name]["devices"]
            assert 0.6 * paper <= row["devices"] <= 1.4 * paper, name

    def test_flexicore4plus_has_more_devices_than_fc4(self):
        rows = tables.table4()
        assert rows["FlexiCore4+"]["devices"] > \
            rows["FlexiCore4"]["devices"]

    def test_refined_process_lowers_power(self):
        rows = tables.table4()
        # Table 4: FlexiCore4+ (refined pull-ups) draws less than FC4.
        assert rows["FlexiCore4+"]["mean_power_mw"] < \
            rows["FlexiCore4"]["mean_power_mw"]


class TestTable5:
    def test_within_paper_bands(self):
        rows = tables.table5()
        for core, row in rows.items():
            paper = paper_data.TABLE5[core]
            for voltage in (3.0, 4.5):
                assert abs(row["incl"][voltage]
                           - paper["incl"][voltage]) < 12
                assert abs(row["full"][voltage]
                           - paper["full"][voltage]) < 12


class TestTable6:
    def test_all_kernels_present(self):
        rows = tables.table6()
        assert set(rows) == set(paper_data.TABLE6)

    def test_ordering_roughly_matches_paper(self):
        """The big kernels (Calculator, DecTree, XorShift) stay big; the
        small ones stay small."""
        rows = tables.table6()
        measured = {k: v["static_instructions"] for k, v in rows.items()}
        assert measured["Calculator"] > measured["Thresholding"]
        assert measured["XorShift8"] > measured["Parity Check"]
        assert measured["Decision Tree"] > measured["IntAvg"]


class TestTable7:
    def test_this_work_row(self):
        data = tables.table7()
        tw = data["this_work"]
        assert tw["width"] == 4
        assert tw["clock_khz"] == 12.5
        assert 0.6 <= tw["yield"] <= 0.95

    def test_flexicore_is_smallest_flexible_processor(self):
        data = tables.table7()
        flexible = [row for row in data["others"]
                    if row["flexible"] and row["devices"] > 0]
        assert all(data["this_work"]["devices"] < row["devices"]
                   for row in flexible
                   if row["name"] != "MLIC")


class TestWaferFigures:
    def test_figure6_functional_dies_have_zero_errors(self):
        maps = figures.figure6()
        for (core, voltage), cells in maps.items():
            assert any(errors == 0 for errors in cells.values()), \
                (core, voltage)

    def test_figure6_fc8_3v_mostly_failing(self):
        maps = figures.figure6()
        cells = maps[("FlexiCore8", 3.0)]
        failing = sum(1 for errors in cells.values() if errors > 0)
        assert failing / len(cells) > 0.8

    def test_figure7_rsd_bands(self):
        data = figures.figure7()
        assert 0.10 < data[("FlexiCore4", 4.5)]["rsd"] < 0.22
        assert 0.14 < data[("FlexiCore8", 4.5)]["rsd"] < 0.30


class TestFigure8:
    def test_rows_present(self):
        rows = figures.figure8()["rows"]
        assert "Calculator (mul)" in rows
        assert "Calculator (div)" in rows
        assert "XorShift8" in rows

    def test_latencies_in_milliseconds(self):
        rows = figures.figure8()["rows"]
        for name, row in rows.items():
            assert 0.1 < row["time_ms"] < 40, name

    def test_multiplication_is_slowest(self):
        rows = figures.figure8()["rows"]
        slowest = max(rows, key=lambda name: rows[name]["time_ms"])
        assert slowest == "Calculator (mul)"

    def test_energy_proportional_to_time(self):
        data = figures.figure8()
        for row in data["rows"].values():
            expected = (row["instructions"]
                        * data["nj_per_instruction"] * 1e-3)
            assert row["energy_uj"] == pytest.approx(expected)

    def test_nj_per_instruction_near_360(self):
        assert 250 < figures.figure8()["nj_per_instruction"] < 500


class TestDseFigures:
    def test_figure12_acc_sc_anchor(self):
        rows = figures.figure12()
        assert rows["Acc SC"]["area"] == pytest.approx(1.0)
        assert rows["Acc SC"]["code_size"] == pytest.approx(1.0)

    def test_figure13_bus_infeasibility(self):
        rows = figures.figure13()
        assert rows["LS SC"]["bus"] is None
        assert rows["LS P"]["bus"] is None
        assert rows["LS MC"]["bus"] is not None

    def test_figure11_has_average_row(self):
        data = figures.figure11()
        for table in (data["performance"], data["energy"]):
            for design_rows in table.values():
                assert "Avg" in design_rows


class TestFormatting:
    @pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
    def test_formatters_return_text(self, name):
        text = ALL_EXPERIMENTS[name]()
        assert isinstance(text, str)
        assert len(text.splitlines()) >= 3

    def test_headline_summary(self):
        text = headline_summary()
        assert "yield" in text
        assert "RSD" in text

    def test_report_generation(self, tmp_path):
        from repro.experiments.report import generate

        path = tmp_path / "EXPERIMENTS.md"
        document = generate(str(path))
        assert path.exists()
        assert "Table 5" in document
        assert "Figure 13" in document
