"""Cost model, Section 4.3 dicing analysis, Table 1 feasibility, Pareto."""

import pytest

from repro.fab import cost, dicing


class TestCostModel:
    def test_sub_cent_at_paper_yield(self):
        """Section 1: 81% yield enables sub-cent cost at volume."""
        estimate = cost.flexible_die_cost(0.81)
        assert estimate.sub_cent
        assert estimate.cost_per_good_die_usd > 0.001  # not absurd

    def test_flexicore8_yield_also_clears(self):
        assert cost.flexible_die_cost(0.57).sub_cent

    def test_break_even_yield_below_measured(self):
        minimum = cost.yield_for_target_cost(0.01)
        assert 0.3 < minimum < 0.81

    def test_research_layout_is_not_sub_cent(self):
        # 124 sparse sites per wafer cannot amortize the wafer cost.
        assert not cost.research_die_cost(0.81).sub_cent

    def test_zero_yield_is_infinite_cost(self):
        estimate = cost.flexible_die_cost(0.0)
        assert estimate.cost_per_good_die_usd == float("inf")

    def test_cost_monotone_in_yield(self):
        curve = cost.cost_sensitivity([0.2, 0.5, 0.8])
        assert curve[0.2] > curve[0.5] > curve[0.8]

    def test_production_density_far_above_research(self):
        assert cost.production_die_count() > 1500

    def test_impossible_target(self):
        assert cost.yield_for_target_cost(
            cost.TEST_COST_USD / 2
        ) == float("inf")


class TestDicing:
    def test_blade_waste_range_matches_section43(self):
        # "wasting more than half to 90% of the wafer"
        gentle = dicing.blade_dicing(50.0)
        harsh = dicing.blade_dicing(200.0)
        assert gentle.waste_fraction > 0.5
        assert 0.80 < harsh.waste_fraction < 0.95

    def test_plasma_reduces_waste_but_not_io(self):
        plasma = dicing.plasma_dicing()
        assert plasma.waste_fraction < dicing.blade_dicing(50.0).waste_fraction
        assert plasma.ios_per_side <= 2

    def test_io_limitation(self):
        # "each side will support 1-2 IOs at a 10 um pitch, which is
        # insufficient for a FlexiCore" (FlexiCore4 needs 24 data pads).
        analysis = dicing.blade_dicing()
        assert 1 <= analysis.ios_per_side <= 2
        assert 4 * analysis.ios_per_side < 24

    def test_summary_fields(self):
        summary = dicing.section43_summary()
        assert summary["dies_per_wafer"] > 100_000
        assert summary["plasma_waste"] < summary["blade_waste_range"][0]


class TestApplications:
    @pytest.fixture(scope="class")
    def reports(self):
        from repro.experiments.tables import table1

        return {r.application.name: r for r in table1()}

    def test_all_table1_rows_assessed(self, reports):
        from repro.tech.applications import APPLICATIONS

        assert len(reports) == len(APPLICATIONS)

    def test_low_rate_sensors_feasible(self, reports):
        for name in ("Smart Bandage", "Body Temperature Sensor",
                     "Light Level Sensor", "Heart Beat Sensor"):
            assert reports[name].rate_ok, name

    def test_precision_classification(self, reports):
        assert reports["Heart Beat Sensor"].precision_ok_4bit
        assert not reports["Blood Pressure Sensor"].precision_ok_4bit
        assert reports["Blood Pressure Sensor"].precision_ok_8bit
        assert not reports["Tremor Sensor"].precision_ok_8bit

    def test_battery_life_scales_with_duty(self, reports):
        # A 0.01 Hz bandage outlives a 25 Hz odor sensor.
        assert reports["Smart Bandage"].battery_days > \
            reports["Odor Sensor"].battery_days

    def test_two_week_class_exists(self, reports):
        # Section 5.2's example lands at roughly two weeks; some Table 1
        # duty cycles should land in that band.
        days = [r.battery_days for r in reports.values()]
        assert any(7 <= d <= 60 for d in days)


class TestParetoExplorer:
    def test_frontier_contains_ls_p(self):
        from repro.dse.explorer import explore

        frontier, points = explore(metrics=("area", "energy"))
        names = {point.name for point in frontier}
        assert "LS P" in names          # best energy
        assert "FlexiCore4" in names    # smallest area

    def test_dominated_designs_excluded(self):
        from repro.dse.explorer import explore

        frontier, points = explore(metrics=("area", "energy"))
        names = {point.name for point in frontier}
        assert "Acc MC" not in names  # dominated by Acc P

    def test_narrow_bus_frontier_excludes_infeasible(self):
        from repro.dse.explorer import explore

        frontier, points = explore(metrics=("area", "energy"),
                                   bus_bits=8)
        assert "LS P" not in points
        assert "LS SC" not in points

    def test_dominates_relation(self):
        from repro.dse.explorer import dominates

        assert dominates((1, 1), (2, 2))
        assert dominates((1, 2), (1, 3))
        assert not dominates((1, 2), (2, 1))
        assert not dominates((1, 1), (1, 1))

    def test_unknown_metric_rejected(self):
        from repro.dse.explorer import explore

        with pytest.raises(KeyError):
            explore(metrics=("vibes",))

    def test_format_frontier(self):
        from repro.dse.explorer import explore, format_frontier

        metrics = ("area", "energy")
        frontier, points = explore(metrics=metrics)
        text = format_frontier(frontier, points, metrics)
        assert "Pareto-optimal" in text
