"""CoreState unit tests: the architectural-state contract."""

import pytest

from repro.isa.state import IPORT_ADDR, OPORT_ADDR, CoreState


class TestBasics:
    def test_power_on_state(self):
        state = CoreState()
        assert state.acc == 0 and state.pc == 0 and state.carry == 0
        assert state.mem == [0] * 8
        assert not state.halted

    def test_masks(self):
        state = CoreState(width=4)
        assert state.word_mask == 0xF
        assert state.pc_mask == 0x7F
        assert CoreState(width=8).word_mask == 0xFF

    def test_set_acc_truncates(self):
        state = CoreState(width=4)
        state.set_acc(0x1F)
        assert state.acc == 0xF

    def test_predicates(self):
        state = CoreState(width=4)
        state.set_acc(0x8)
        assert state.acc_negative() and not state.acc_zero()
        state.set_acc(0)
        assert state.acc_zero() and not state.acc_negative()

    def test_pc_advance_wraps(self):
        state = CoreState()
        state.pc = 127
        state.advance_pc(2)
        assert state.pc == 1

    def test_branch_masks_target(self):
        state = CoreState()
        state.branch_to(0xFF)
        assert state.pc == 0x7F


class TestMemoryMappedIo:
    def test_read_addr0_samples_input(self):
        state = CoreState()
        state.input_fn = lambda: 0x1B  # over-wide: masked to 4 bits
        assert state.read_mem(IPORT_ADDR) == 0xB
        assert state.io_reads == 1

    def test_write_addr1_drives_output(self):
        state = CoreState()
        seen = []
        state.output_fn = seen.append
        state.write_mem(OPORT_ADDR, 0x9)
        assert seen == [9]
        assert state.mem[1] == 9  # readable back

    def test_write_addr0_is_not_readable(self):
        state = CoreState()
        state.input_fn = lambda: 0x3
        state.write_mem(IPORT_ADDR, 0xF)
        assert state.read_mem(IPORT_ADDR) == 0x3

    def test_address_wraps_modulo_words(self):
        state = CoreState(mem_words=8)
        state.write_mem(10, 5)  # 10 % 8 == 2
        assert state.mem[2] == 5

    def test_register_view_bypasses_io(self):
        state = CoreState()
        state.input_fn = lambda: 0xC
        state.write_reg(0, 7)
        assert state.read_reg(0) == 7  # no IPORT interception
        assert state.io_reads == 0


class TestLifecycle:
    def test_reset_clears_everything(self):
        state = CoreState()
        state.set_acc(5)
        state.pc = 9
        state.carry = 1
        state.retaddr = 3
        state.mem[4] = 2
        state.halted = True
        state.reset()
        assert state.snapshot() == {
            "acc": 0, "pc": 0, "carry": 0, "retaddr": 0,
            "mem": (0,) * 8, "halted": False,
        }

    def test_snapshot_is_immutable_copy(self):
        state = CoreState()
        snap = state.snapshot()
        state.mem[2] = 9
        assert snap["mem"][2] == 0

    def test_repr_is_informative(self):
        state = CoreState()
        state.set_acc(0xA)
        assert "0xa" in repr(state)
