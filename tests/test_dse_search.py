"""Adaptive DSE search: the parametric space, the NSGA-II machinery,
and the Pareto/explorer bugfix sweep."""

import json
import random

import numpy as np
import pytest

from repro.dse.explorer import (
    dominates,
    explore,
    format_frontier,
    pareto_frontier,
)
from repro.dse.search import (
    SearchConfig,
    crowding_distance,
    exhaustive,
    format_search_frontier,
    frontier_of,
    non_dominated_sort,
    search,
    weakly_dominates,
)
from repro.dse.space import DesignSpace, Genome
from repro.engine import Engine

#: A space tiny enough that searches finish in well under a second.
TINY = DesignSpace(operand_models=("acc", "ls"), microarchs=("SC",),
                   features=("adc", "shift"), bus_bits=(0,))


# ----------------------------------------------------------------------
# Satellite: pareto_frontier edge cases.
# ----------------------------------------------------------------------

class TestParetoFrontierEdges:
    def test_duplicate_value_tuples_both_survive(self):
        points = {"a": (1.0, 2.0), "b": (1.0, 2.0), "c": (3.0, 3.0)}
        names = {p.name for p in pareto_frontier(points)}
        assert names == {"a", "b"}

    def test_single_point_space(self):
        frontier = pareto_frontier({"only": (1.0, 1.0)})
        assert [p.name for p in frontier] == ["only"]
        assert frontier[0].dominates == ()

    def test_empty_points(self):
        assert pareto_frontier({}) == []

    def test_deterministic_under_shuffled_input_order(self):
        rng = random.Random(7)
        points = {f"d{i}": (float(i % 4), float((7 - i) % 5), float(i))
                  for i in range(12)}
        reference = pareto_frontier(points)
        for _ in range(5):
            items = list(points.items())
            rng.shuffle(items)
            assert pareto_frontier(dict(items)) == reference

    def test_first_metric_ties_order_by_name(self):
        points = {"bbb": (1.0, 2.0), "aaa": (1.0, 2.0)}
        assert [p.name for p in pareto_frontier(points)] == ["aaa", "bbb"]

    def test_dominates_requires_strict_improvement(self):
        assert not dominates((1.0, 2.0), (1.0, 2.0))
        assert dominates((1.0, 1.0), (1.0, 2.0))


# ----------------------------------------------------------------------
# Satellites: explorer baseline + formatting.
# ----------------------------------------------------------------------

class TestExplorerFixes:
    def test_missing_baseline_raises(self):
        from repro.dse.designs import ACC_SC, LS_SC

        with pytest.raises(ValueError, match="baseline"):
            explore(designs=(ACC_SC, LS_SC), transactions=2)

    def test_explicit_baseline_accepted(self):
        from repro.dse.designs import ACC_SC, LS_SC

        frontier, points = explore(
            designs=(ACC_SC, LS_SC), transactions=2,
            baseline=ACC_SC.name,
        )
        assert points[ACC_SC.name][0] == pytest.approx(1.0)

    def test_all_infeasible_yields_empty_frontier(self):
        from repro.dse.designs import ACC_SC

        # A 4-bit bus starves the single-cycle fetch: every kernel is
        # infeasible, so feasible_only filters the whole space away.
        frontier, points = explore(
            designs=(ACC_SC,), transactions=2, bus_bits=4,
            baseline=ACC_SC.name,
        )
        assert points == {}
        assert frontier == []

    def test_format_frontier_aligns_long_names(self):
        points = {
            "a-very-long-design-name": (1.0, 2.0),
            "short": (2.0, 1.0),
        }
        frontier = pareto_frontier(points)
        text = format_frontier(frontier, points, ("area", "energy"))
        header, *rows, _legend = text.splitlines()
        first_col = header.index("area") + len("area")
        for row in rows:
            # Each metric cell occupies its own 9-wide column ending
            # where the header's metric name ends.
            cell = row[first_col - 9:first_col]
            assert cell.strip(), row
            float(cell)  # parses clean: no name fused into the cell

    def test_duplicate_design_names_raise(self):
        from dataclasses import replace

        from repro.dse.designs import ACC_SC, LS_SC
        from repro.dse.evaluate import evaluate_all

        clone = replace(LS_SC, name=ACC_SC.name)
        with pytest.raises(ValueError, match="duplicate"):
            evaluate_all(designs=(ACC_SC, clone), transactions=2)


# ----------------------------------------------------------------------
# The parametric space.
# ----------------------------------------------------------------------

class TestDesignSpace:
    def test_size_matches_enumeration(self):
        space = DesignSpace(features=("adc", "shift", "mult"))
        genomes = space.enumerate()
        assert len(genomes) == space.size()
        assert len({g.key for g in genomes}) == len(genomes)

    def test_genome_canonical_form(self):
        a = Genome("acc", "SC", ("shift", "adc", "adc"))
        b = Genome("acc", "SC", ("adc", "shift"))
        assert a == b
        assert a.key == "acc-sc[adc+shift]"
        assert a.isa_name == "extacc[adc+shift]"
        assert Genome("ls", "MC", ("adc",)).features == ()

    def test_membership(self):
        assert Genome("acc", "SC", ("adc",)) in TINY
        assert Genome("acc", "P", ("adc",)) not in TINY
        assert Genome("acc", "SC", ("mult",)) not in TINY

    def test_mutate_and_crossover_stay_in_space(self):
        rng = np.random.default_rng(3)
        genome = TINY.random(rng)
        for _ in range(40):
            child = TINY.mutate(genome, rng)
            assert child in TINY
            other = TINY.crossover(genome, child, rng)
            assert other in TINY
            genome = child

    def test_neighbors_are_single_moves(self):
        space = DesignSpace(features=("adc", "shift"))
        genome = Genome("acc", "SC", ("adc",))
        neighbors = space.neighbors(genome)
        assert Genome("acc", "SC", ()) in neighbors
        assert Genome("acc", "SC", ("adc", "shift")) in neighbors
        assert Genome("acc", "P", ("adc",)) in neighbors
        assert Genome("acc", "SC", ("adc",), 8) in neighbors
        assert all(n != genome and n in space for n in neighbors)

    def test_anchors_cover_paper_grid(self):
        space = DesignSpace()
        anchors = space.anchors()
        keys = {a.key for a in anchors}
        assert "acc-sc[base]" in keys
        assert "acc-sc[shift]" in keys
        assert "ls-sc" in keys
        assert all(a in space for a in anchors)

    def test_axis_validation(self):
        with pytest.raises(ValueError, match="operand model"):
            DesignSpace(operand_models=("stack",))
        with pytest.raises(ValueError, match="feature"):
            DesignSpace(features=("warp",))


# ----------------------------------------------------------------------
# NSGA-II machinery.
# ----------------------------------------------------------------------

class TestSortMachinery:
    def test_non_dominated_sort_fronts(self):
        entries = [
            (True, (1.0, 1.0)),   # front 0
            (True, (2.0, 2.0)),   # dominated by 0
            (True, (0.5, 3.0)),   # front 0 (trade-off)
            (False, (0.0, 0.0)),  # infeasible: dominated by any feasible
        ]
        fronts = non_dominated_sort(entries)
        assert fronts[0] == [0, 2]
        assert 3 in fronts[-1]

    def test_duplicate_entries_share_a_front(self):
        entries = [(True, (1.0, 1.0)), (True, (1.0, 1.0))]
        assert non_dominated_sort(entries)[0] == [0, 1]

    def test_crowding_boundaries_infinite(self):
        values = [(0.0, 3.0), (1.0, 2.0), (2.0, 1.0), (3.0, 0.0)]
        front = [0, 1, 2, 3]
        crowd = crowding_distance(values, front)
        assert crowd[0] == crowd[3] == float("inf")
        assert 0 < crowd[1] < float("inf")

    def test_weakly_dominates(self):
        assert weakly_dominates((1.0, 2.0), (1.0, 2.0))
        assert weakly_dominates((1.0, 1.0), (1.0, 2.0))
        assert not weakly_dominates((2.0, 1.0), (1.0, 2.0))


# ----------------------------------------------------------------------
# The search loop itself.
# ----------------------------------------------------------------------

class TestSearch:
    def test_deterministic_for_fixed_budget_and_seed(self):
        cfg = SearchConfig(budget=6, seed=11, population=4, space=TINY)
        runs = [
            search(cfg, engine=Engine(jobs=jobs, cache=None))
            for jobs in (1, 2)
        ]
        assert runs[0].frontier_names() == runs[1].frontier_names()
        first = [dict(t, cached=None) for t in runs[0].trail]
        second = [dict(t, cached=None) for t in runs[1].trail]
        assert first == second

    def test_budget_is_respected(self):
        cfg = SearchConfig(budget=3, seed=1, population=4, space=TINY)
        result = search(cfg, engine=Engine(jobs=1, cache=None))
        assert result.evaluations == 3
        assert len(result.trail) == 3

    def test_repeat_search_is_warm(self, tmp_path):
        cfg = SearchConfig(budget=6, seed=11, population=4, space=TINY)
        cold = search(cfg, engine=Engine(jobs=1, cache=tmp_path))
        warm = search(cfg, engine=Engine(jobs=1, cache=tmp_path))
        assert warm.frontier_names() == cold.frontier_names()
        assert warm.cache_hits >= 0.9 * warm.evaluations

    def test_frontier_dominates_exhaustive_grid(self, tmp_path):
        space = DesignSpace(
            operand_models=("acc", "ls"), microarchs=("SC",),
            features=("adc", "shift", "flags"), bus_bits=(0,),
        )
        # Single fidelity (screen == full) keeps this tiny-budget test
        # robust; the benchmark exercises the successive-halving path.
        cfg = SearchConfig(budget=7, seed=2022, population=6,
                           space=space, screen_transactions=12,
                           screen_wafers=5)
        engine = Engine(jobs=2, cache=tmp_path)
        result = search(cfg, engine=engine)
        grid = frontier_of(exhaustive(space=space, config=cfg,
                                      engine=engine),
                           cfg.objectives)
        searched = [entry.values for entry in result.frontier]
        assert grid, "exhaustive grid produced no feasible frontier"
        for _, grid_values in grid:
            assert any(weakly_dominates(found, grid_values)
                       for found in searched)

    def test_trail_and_table_shapes(self, tmp_path):
        cfg = SearchConfig(budget=4, seed=2, population=4, space=TINY)
        result = search(cfg, engine=Engine(jobs=1, cache=None))
        path = tmp_path / "trail.jsonl"
        result.write_trail(path)
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert [r["evaluation"] for r in records] == [1, 2, 3, 4]
        assert all({"design", "fidelity", "area", "cost", "energy"}
                   <= set(r) for r in records)
        table = format_search_frontier(result)
        assert "design" in table.splitlines()[0]
        assert f"{result.evaluations} evaluation(s)" in table

    def test_config_validation(self):
        with pytest.raises(ValueError, match="objective"):
            SearchConfig(objectives=("area", "beauty"))
        with pytest.raises(ValueError, match="budget"):
            SearchConfig(budget=0)

    def test_to_doc_round_trips_json(self):
        cfg = SearchConfig(budget=3, seed=4, population=4, space=TINY)
        result = search(cfg, engine=Engine(jobs=1, cache=None))
        doc = json.loads(json.dumps(result.to_doc()))
        assert doc["budget"] == 3
        assert doc["evaluations"] == 3
        for entry in doc["frontier"]:
            assert set(entry) >= {"design", "genome", "area", "cost",
                                  "energy", "yield", "feasible"}
