"""The experiment execution engine: seeds, scheduling, cache, faults."""

import json
import pickle
import time

import numpy as np
import pytest

from repro.engine import (
    ChildSeed,
    Engine,
    EngineJobError,
    Job,
    ResultCache,
    as_child_seed,
    function_identity,
    job_cache_key,
    job_function,
    load_last_run,
    spawn_seeds,
)
from repro.engine.cache import canonical


# ----------------------------------------------------------------------
# Module-level job functions (worker processes import them by reference).
# ----------------------------------------------------------------------

@job_function("test.normal_sum", version="1")
def normal_sum_job(params, seed):
    rng = seed.rng()
    return float(rng.normal(size=params["n"]).sum())


@job_function("test.echo", version="1")
def echo_job(params, seed):
    return dict(params)


@job_function("test.slow_echo", version="1")
def slow_echo_job(params, seed):
    time.sleep(params.get("delay", 0.1))
    return params["value"]


@job_function("test.fail_always", version="1")
def fail_always_job(params, seed):
    raise ValueError("deliberate failure")


class FlakyCounter:
    """A callable failing its first ``failures`` invocations.

    Instances stay in one process (serial engine), so a plain attribute
    counter is enough to observe the retry loop.
    """

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0
        self.__name__ = self.__qualname__ = "flaky_counter"
        self.__module__ = __name__

    def __call__(self, params, seed):
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError(f"flaky failure #{self.calls}")
        return params["value"]


class TestChildSeeds:
    def test_matches_seed_sequence_spawn(self):
        """ChildSeed reconstruction is exactly SeedSequence.spawn."""
        reference = np.random.SeedSequence(2022).spawn(6)
        for child, ref in zip(spawn_seeds(2022, 6), reference):
            ours = np.random.default_rng(child.seed_sequence())
            theirs = np.random.default_rng(ref)
            assert ours.integers(0, 2**63, 8).tolist() == \
                theirs.integers(0, 2**63, 8).tolist()

    def test_children_are_independent_of_count(self):
        assert spawn_seeds(7, 3) == spawn_seeds(7, 5)[:3]

    def test_nested_spawn_extends_key(self):
        child = spawn_seeds(9, 2)[1]
        grandchild = child.spawn(3)[2]
        assert grandchild.entropy == 9
        assert grandchild.spawn_key == (1, 2)

    def test_as_child_seed(self):
        assert as_child_seed(None) is None
        assert as_child_seed(5) == ChildSeed(5)
        seed = ChildSeed(5, (1,))
        assert as_child_seed(seed) is seed

    def test_seed_is_picklable(self):
        seed = spawn_seeds(11, 4)[3]
        clone = pickle.loads(pickle.dumps(seed))
        assert clone == seed
        assert clone.rng().normal() == seed.rng().normal()


class TestDeterminism:
    def test_parallel_equals_serial_bit_for_bit(self):
        jobs = [
            Job(normal_sum_job, {"n": 2000}, seed=child,
                label=f"sum{index}")
            for index, child in enumerate(spawn_seeds(2022, 10))
        ]
        serial = Engine(jobs=1).run(jobs)
        parallel = Engine(jobs=4).run(jobs)
        assert serial == parallel

    def test_chunking_does_not_change_results(self):
        jobs = [
            Job(normal_sum_job, {"n": 500}, seed=child)
            for child in spawn_seeds(3, 9)
        ]
        by_one = Engine(jobs=3, chunk_size=1).run(jobs)
        by_four = Engine(jobs=3, chunk_size=4).run(jobs)
        assert by_one == by_four

    def test_results_in_submission_order(self):
        jobs = [
            Job(echo_job, {"index": index}) for index in range(12)
        ]
        results = Engine(jobs=4, chunk_size=2).run(jobs)
        assert [r["index"] for r in results] == list(range(12))


class TestCacheKeys:
    def test_canonical_rejects_unstable_objects(self):
        class Opaque:
            pass

        with pytest.raises(TypeError):
            canonical(Opaque())

    def test_canonical_handles_rich_params(self):
        from repro.dse.designs import BASELINE

        document = canonical({
            "design": BASELINE,
            "features": frozenset({"b", "a"}),
            "ratio": 1.5,
            "flags": (1, 2),
        })
        assert json.dumps(document)  # JSON-safe
        assert document == canonical({
            "flags": [1, 2],
            "ratio": 1.5,
            "features": frozenset({"a", "b"}),
            "design": BASELINE,
        })

    def test_key_changes_with_params_and_seed(self):
        base = Job(echo_job, {"a": 1}, seed=ChildSeed(1))
        assert job_cache_key(base) == job_cache_key(
            Job(echo_job, {"a": 1}, seed=ChildSeed(1))
        )
        assert job_cache_key(base) != job_cache_key(
            Job(echo_job, {"a": 2}, seed=ChildSeed(1))
        )
        assert job_cache_key(base) != job_cache_key(
            Job(echo_job, {"a": 1}, seed=ChildSeed(2))
        )

    def test_registered_identity_survives_relocation(self):
        name, version = function_identity(echo_job)
        assert (name, version) == ("test.echo", "1")


class TestResultCache:
    def test_hit_on_rerun(self, tmp_path):
        counter = FlakyCounter(failures=0)
        job = Job(counter, {"value": 41}, seed=ChildSeed(1),
                  cache_key="fixed-key")
        cold = Engine(jobs=1, cache=tmp_path)
        assert cold.run([job]) == [41]
        assert cold.metrics.cache_misses == 1
        warm = Engine(jobs=1, cache=tmp_path)
        assert warm.run([job]) == [41]
        assert counter.calls == 1          # second run never computed
        assert warm.metrics.cache_hits == 1
        assert warm.metrics.cache_hit_rate == 1.0

    def test_invalidation_on_param_or_seed_change(self, tmp_path):
        engine = Engine(jobs=1, cache=tmp_path)
        engine.run([Job(normal_sum_job, {"n": 10}, seed=ChildSeed(1))])
        engine.run([Job(normal_sum_job, {"n": 11}, seed=ChildSeed(1))])
        engine.run([Job(normal_sum_job, {"n": 10}, seed=ChildSeed(2))])
        assert engine.metrics.cache_hits == 0
        assert engine.metrics.cache_misses == 3
        stats = engine.cache.stats()
        assert stats["entries"] == 3

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        job = Job(normal_sum_job, {"n": 10}, seed=ChildSeed(1))
        first = Engine(jobs=1, cache=tmp_path)
        (value,) = first.run([job])
        (entry,) = (tmp_path / "test.normal_sum").glob("*.pkl")
        entry.write_bytes(b"not a pickle")
        second = Engine(jobs=1, cache=tmp_path)
        assert second.run([job]) == [value]
        assert second.metrics.cache_misses == 1

    def test_clear_and_stats(self, tmp_path):
        engine = Engine(jobs=1, cache=tmp_path)
        engine.run([Job(normal_sum_job, {"n": 10}, seed=ChildSeed(1))])
        cache = ResultCache(tmp_path)
        assert cache.stats()["entries"] == 1
        cache.clear()
        assert cache.stats()["entries"] == 0

    def test_last_run_metrics_persisted(self, tmp_path):
        engine = Engine(jobs=1, cache=tmp_path)
        engine.run([Job(normal_sum_job, {"n": 10}, seed=ChildSeed(1))],
                   stage="demo")
        last = load_last_run(tmp_path)
        assert last["jobs_completed"] == 1
        assert last["stages"][0]["stage"] == "demo"

    def test_cached_rerun_is_5x_faster(self, tmp_path):
        """The acceptance benchmark: warm runs ride the cache."""
        jobs = [
            Job(slow_echo_job, {"value": index, "delay": 0.1},
                seed=ChildSeed(index))
            for index in range(4)
        ]
        cold = Engine(jobs=1, cache=tmp_path)
        started = time.perf_counter()
        cold_results = cold.run(jobs)
        cold_s = time.perf_counter() - started

        warm = Engine(jobs=1, cache=tmp_path)
        started = time.perf_counter()
        warm_results = warm.run(jobs)
        warm_s = time.perf_counter() - started

        assert warm_results == cold_results
        assert warm.metrics.cache_hits == len(jobs)
        assert cold_s >= 5 * warm_s, (cold_s, warm_s)


class TestFaultTolerance:
    def test_retry_until_success(self):
        counter = FlakyCounter(failures=2)
        engine = Engine(jobs=1, retries=2, backoff=0.001)
        (result,) = engine.run([Job(counter, {"value": 7})])
        assert result == 7
        assert counter.calls == 3
        assert engine.metrics.retries == 2
        assert engine.metrics.failures == 0

    def test_bounded_retry_then_raises(self):
        counter = FlakyCounter(failures=10)
        engine = Engine(jobs=1, retries=2, backoff=0.001)
        with pytest.raises(EngineJobError) as info:
            engine.run([Job(counter, {"value": 7}, label="doomed")])
        assert counter.calls == 3
        assert info.value.label == "doomed"
        assert engine.metrics.failures == 1

    def test_worker_exception_retried_serially(self):
        """A job that raises in a pool worker is retried in-process and
        counted as a worker failure, not a run failure."""
        engine = Engine(jobs=2, retries=2, backoff=0.001)
        with pytest.raises(EngineJobError):
            engine.run([
                Job(fail_always_job, {"i": index}) for index in range(2)
            ])
        assert engine.metrics.worker_failures >= 1

    def test_degrades_to_serial_when_pool_unavailable(self):
        def broken_pool_factory(workers):
            raise OSError("no processes for you")

        engine = Engine(jobs=4, pool_factory=broken_pool_factory)
        jobs = [
            Job(normal_sum_job, {"n": 100}, seed=child)
            for child in spawn_seeds(5, 6)
        ]
        results = engine.run(jobs)
        assert results == Engine(jobs=1).run(jobs)
        assert engine.metrics.degraded

    def test_degrades_when_pool_breaks_mid_run(self):
        from concurrent.futures.process import BrokenProcessPool

        class BreakingFuture:
            def result(self, timeout=None):
                raise BrokenProcessPool("worker died")

        class BreakingExecutor:
            def submit(self, fn, payload):
                return BreakingFuture()

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        engine = Engine(jobs=2, pool_factory=lambda n: BreakingExecutor())
        jobs = [
            Job(normal_sum_job, {"n": 100}, seed=child)
            for child in spawn_seeds(5, 4)
        ]
        results = engine.run(jobs)
        assert results == Engine(jobs=1).run(jobs)
        assert engine.metrics.degraded
        assert engine.metrics.worker_failures >= 1


class TestHooks:
    def test_events_emitted(self):
        events = []
        engine = Engine(jobs=1, hooks=[
            lambda event, payload: events.append((event, payload))
        ])
        engine.run([Job(echo_job, {"x": 1}, label="probe")],
                   stage="evts")
        kinds = [event for event, _ in events]
        assert "job_done" in kinds
        assert "stage_done" in kinds

    def test_failing_hook_is_dropped_not_fatal(self):
        def bad_hook(event, payload):
            raise RuntimeError("hook bug")

        engine = Engine(jobs=1, hooks=[bad_hook])
        (result,) = engine.run([Job(echo_job, {"x": 1})])
        assert result == {"x": 1}


class TestGlobalConfiguration:
    def test_configure_and_reset(self):
        from repro import engine as engine_mod

        try:
            configured = engine_mod.configure(jobs=3)
            assert configured.jobs == 3
            assert engine_mod.current_engine() is configured
            assert engine_mod.engine_or_default(None) is configured
            explicit = Engine(jobs=1)
            assert engine_mod.engine_or_default(explicit) is explicit
        finally:
            engine_mod.reset()
        assert engine_mod.current_engine().jobs == 1

    def test_unknown_option_rejected(self):
        from repro import engine as engine_mod

        with pytest.raises(TypeError):
            engine_mod.configure(wrokers=4)
