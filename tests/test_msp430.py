"""Section 3.5 openMSP430 comparison."""

import pytest

from repro.netlist.msp430 import (
    MSP430_CELL_MIX,
    estimate_msp430,
    section35_comparison,
)


class TestEstimate:
    def test_uses_only_library_cells(self):
        from repro.tech.cells import LIBRARY

        assert set(MSP430_CELL_MIX) <= set(LIBRARY)

    def test_order_of_magnitude(self):
        estimate = estimate_msp430()
        # Paper: 170 mm^2 synthesized in 0.8 um IGZO.
        assert 80 < estimate.area_mm2 < 260
        assert estimate.gate_count > 5000

    def test_power_scales_with_voltage(self):
        assert estimate_msp430(vdd=3.0).static_power_mw < \
            estimate_msp430(vdd=4.5).static_power_mw


class TestComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        return section35_comparison()

    def test_area_ratio_near_30x(self, comparison):
        assert 20 < comparison["area_ratio"] < 45

    def test_power_ratio_order_of_magnitude(self, comparison):
        # Paper: 23x.  Our power model tracks area, so the ratio lands
        # near the area ratio; the claim being reproduced is
        # "more than an order of magnitude".
        assert comparison["power_ratio"] > 10

    def test_flexicore_side_is_consistent(self, comparison):
        assert comparison["fc4_area_mm2"] < 6.0
        assert comparison["fc4_static_mw"] < 10.0
