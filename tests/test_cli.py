"""Command-line interface smoke tests."""

import pytest

from repro.cli import main

SOURCE = """
loop:
    load 0
    addi 1
    store 1
    nandi 0
    brn loop
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "echo.asm"
    path.write_text(SOURCE)
    return str(path)


class TestAsm:
    def test_assemble_and_list(self, source_file, capsys):
        assert main(["asm", source_file]) == 0
        out = capsys.readouterr().out
        assert "5 instructions" in out

    def test_write_image(self, source_file, tmp_path, capsys):
        image = tmp_path / "echo.bin"
        assert main(["asm", source_file, "-o", str(image)]) == 0
        assert image.read_bytes()[0] == 0x70  # load 0

    def test_other_isa(self, tmp_path, capsys):
        path = tmp_path / "p.asm"
        path.write_text("movi r1, 3\nout r1\nhalt\n")
        assert main(["asm", str(path), "--isa", "loadstore"]) == 0


class TestDis:
    def test_disassemble(self, source_file, tmp_path, capsys):
        image = tmp_path / "echo.bin"
        main(["asm", source_file, "-o", str(image)])
        capsys.readouterr()
        assert main(["dis", str(image)]) == 0
        out = capsys.readouterr().out
        assert "addi 1" in out


class TestRun:
    def test_run_with_inputs(self, source_file, capsys):
        assert main(["run", source_file, "--inputs", "1,2,3"]) == 0
        out = capsys.readouterr().out
        assert "0x2 0x3 0x4" in out
        assert "input_exhausted" in out


class TestSuiteCommands:
    def test_kernels(self, capsys):
        assert main(["kernels", "--transactions", "3"]) == 0
        out = capsys.readouterr().out
        assert "XorShift8" in out
        assert "OK" in out

    def test_experiments_single(self, capsys):
        assert main(["experiments", "table6"]) == 0
        assert "Table 6" in capsys.readouterr().out

    def test_experiments_unknown(self, capsys):
        assert main(["experiments", "table99"]) == 2

    def test_report(self, tmp_path, capsys):
        output = tmp_path / "EXPERIMENTS.md"
        assert main(["report", "-o", str(output)]) == 0
        assert output.exists()


class TestHardwareCommands:
    def test_isa_reference(self, capsys):
        assert main(["isa", "extacc"]) == 0
        out = capsys.readouterr().out
        assert "adc" in out and "barrel shifter" in out

    def test_verilog_export(self, tmp_path, capsys):
        output = tmp_path / "core.v"
        assert main(["verilog", "flexicore8", "-o", str(output)]) == 0
        assert "module flexicore8" in output.read_text()

    def test_verilog_unknown_core(self, capsys):
        assert main(["verilog", "pentium"]) == 2

    def test_pareto(self, capsys):
        assert main(["pareto"]) == 0
        assert "Pareto" in capsys.readouterr().out

    def test_trace(self, tmp_path, capsys):
        path = tmp_path / "t.asm"
        path.write_text("load 0\nstore 1\nnandi 0\nbrn 0\n")
        assert main(["trace", str(path), "--inputs", "7",
                     "--max-cycles", "8"]) == 0
        out = capsys.readouterr().out
        assert "load 0" in out and "OPORT" in out


class TestErrorPaths:
    """User errors exit nonzero with one line on stderr, never a
    traceback."""

    def test_unknown_isa_name(self, capsys):
        assert main(["isa", "pentium4"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_unknown_core_name(self, capsys):
        assert main(["kernels", "--isa", "nosuchcore"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "nosuchcore" in err

    def test_malformed_program_file(self, tmp_path, capsys):
        path = tmp_path / "bad.asm"
        path.write_text("definitely_not_an_instruction 99\n")
        assert main(["asm", str(path)]) == 2
        err = capsys.readouterr().err
        assert "unknown mnemonic" in err
        assert len(err.strip().splitlines()) == 1

    def test_undefined_label_in_run(self, tmp_path, capsys):
        path = tmp_path / "label.asm"
        path.write_text("load 0\nbrn nowhere\n")
        assert main(["run", str(path)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_missing_program_file(self, capsys):
        assert main(["run", "/nonexistent/prog.asm"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_bad_backend_flag_exits_2(self, capsys):
        # Every --backend path rejects an unknown name the same way:
        # one `error:` line on stderr, exit 2 -- no argparse usage
        # dump, no traceback.
        for argv in (
            ["yield", "--backend", "quantum"],
            ["dse", "--backend", "quantum"],
            ["pareto", "--backend", "quantum"],
            ["conform", "run", "--backend", "quantum"],
        ):
            assert main(argv) == 2
            err = capsys.readouterr().err
            assert err.startswith("error: unknown backend")
            assert "vector" in err  # the suggestion lists all three

    def test_closed_stdout_pipe_is_not_an_error(self):
        # `repro isa flexicore4 | head -1`: head closing the pipe
        # mid-write must not traceback (exit 0 under pipefail).
        import os
        import subprocess
        import sys as _sys

        import repro

        src = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                     else [])
        )
        completed = subprocess.run(
            ["bash", "-c",
             "set -o pipefail; "
             f"{_sys.executable} -m repro.cli isa flexicore4"
             " | head -c 16 > /dev/null"],
            capture_output=True, timeout=60, env=env,
        )
        assert completed.returncode == 0, completed.stderr
        assert b"Traceback" not in completed.stderr


class TestEngineGcCommand:
    def _filled_cache(self, tmp_path):
        from repro.engine import ResultCache

        cache = ResultCache(tmp_path / "gc-cache")
        for index in range(3):
            cache.put("test.fn", f"{index:064x}", {"blob": "x" * 50})
        return str(cache.root)

    def test_gc_requires_max_bytes(self, tmp_path, capsys):
        root = self._filled_cache(tmp_path)
        assert main(["engine", "gc", "--cache-dir", root]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_stats_reports_bytes_on_disk(self, tmp_path, capsys):
        root = self._filled_cache(tmp_path)
        assert main(["engine", "stats", "--cache-dir", root]) == 0
        assert "bytes on disk" in capsys.readouterr().out

    def test_gc_evicts_to_budget(self, tmp_path, capsys):
        root = self._filled_cache(tmp_path)
        assert main(["engine", "gc", "--cache-dir", root,
                     "--max-bytes", "0"]) == 0
        out = capsys.readouterr().out
        assert "evicted  3 entries" in out
        assert main(["engine", "stats", "--cache-dir", root]) == 0
        assert "(empty)" in capsys.readouterr().out

    def test_size_suffixes(self):
        import argparse

        from repro.cli import _parse_size

        assert _parse_size("1K") == 1024
        assert _parse_size("2M") == 2 * 1024 ** 2
        assert _parse_size("1G") == 1024 ** 3
        assert _parse_size("1.5KB") == 1536
        assert _parse_size("10") == 10
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_size("banana")


class TestClientCommand:
    def test_param_parsing(self):
        from repro.cli import _parse_client_params

        params = _parse_client_params([
            "wafers=2", "core=flexicore4", "voltages=[3.0, 4.5]",
            "gate_check=true",
        ])
        assert params == {
            "wafers": 2, "core": "flexicore4",
            "voltages": [3.0, 4.5], "gate_check": True,
        }
        with pytest.raises(ValueError):
            _parse_client_params(["no-equals-sign"])

    def test_client_against_live_service(self, tmp_path, capsys):
        from repro.service import ServiceConfig, start_in_thread

        handle = start_in_thread(ServiceConfig(
            port=0, cache=str(tmp_path / "cli-cache"),
        ))
        try:
            base = ["client", "--url", handle.base_url,
                    "--key", "dev-local-key"]
            assert main(base + ["types"]) == 0
            assert "kernel_run" in capsys.readouterr().out

            assert main(base + [
                "submit", "kernel_run",
                "--param", "kernel=Parity Check",
                "--param", "transactions=3", "--wait",
            ]) == 0
            out = capsys.readouterr().out
            assert '"status": "completed"' in out

            assert main(base + ["jobs"]) == 0
            assert "kernel_run" in capsys.readouterr().out

            assert main(base + ["status", "doesnotexist"]) == 1
            assert "error:" in capsys.readouterr().err
        finally:
            handle.stop()

    def test_client_connection_refused(self, capsys):
        assert main(["client", "--url", "http://127.0.0.1:1",
                     "--key", "k", "types"]) == 1
        assert "no service at" in capsys.readouterr().err
