"""Command-line interface smoke tests."""

import pytest

from repro.cli import main

SOURCE = """
loop:
    load 0
    addi 1
    store 1
    nandi 0
    brn loop
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "echo.asm"
    path.write_text(SOURCE)
    return str(path)


class TestAsm:
    def test_assemble_and_list(self, source_file, capsys):
        assert main(["asm", source_file]) == 0
        out = capsys.readouterr().out
        assert "5 instructions" in out

    def test_write_image(self, source_file, tmp_path, capsys):
        image = tmp_path / "echo.bin"
        assert main(["asm", source_file, "-o", str(image)]) == 0
        assert image.read_bytes()[0] == 0x70  # load 0

    def test_other_isa(self, tmp_path, capsys):
        path = tmp_path / "p.asm"
        path.write_text("movi r1, 3\nout r1\nhalt\n")
        assert main(["asm", str(path), "--isa", "loadstore"]) == 0


class TestDis:
    def test_disassemble(self, source_file, tmp_path, capsys):
        image = tmp_path / "echo.bin"
        main(["asm", source_file, "-o", str(image)])
        capsys.readouterr()
        assert main(["dis", str(image)]) == 0
        out = capsys.readouterr().out
        assert "addi 1" in out


class TestRun:
    def test_run_with_inputs(self, source_file, capsys):
        assert main(["run", source_file, "--inputs", "1,2,3"]) == 0
        out = capsys.readouterr().out
        assert "0x2 0x3 0x4" in out
        assert "input_exhausted" in out


class TestSuiteCommands:
    def test_kernels(self, capsys):
        assert main(["kernels", "--transactions", "3"]) == 0
        out = capsys.readouterr().out
        assert "XorShift8" in out
        assert "OK" in out

    def test_experiments_single(self, capsys):
        assert main(["experiments", "table6"]) == 0
        assert "Table 6" in capsys.readouterr().out

    def test_experiments_unknown(self, capsys):
        assert main(["experiments", "table99"]) == 2

    def test_report(self, tmp_path, capsys):
        output = tmp_path / "EXPERIMENTS.md"
        assert main(["report", "-o", str(output)]) == 0
        assert output.exists()


class TestHardwareCommands:
    def test_isa_reference(self, capsys):
        assert main(["isa", "extacc"]) == 0
        out = capsys.readouterr().out
        assert "adc" in out and "barrel shifter" in out

    def test_verilog_export(self, tmp_path, capsys):
        output = tmp_path / "core.v"
        assert main(["verilog", "flexicore8", "-o", str(output)]) == 0
        assert "module flexicore8" in output.read_text()

    def test_verilog_unknown_core(self, capsys):
        assert main(["verilog", "pentium"]) == 2

    def test_pareto(self, capsys):
        assert main(["pareto"]) == 0
        assert "Pareto" in capsys.readouterr().out

    def test_trace(self, tmp_path, capsys):
        path = tmp_path / "t.asm"
        path.write_text("load 0\nstore 1\nnandi 0\nbrn 0\n")
        assert main(["trace", str(path), "--inputs", "7",
                     "--max-cycles", "8"]) == 0
        out = capsys.readouterr().out
        assert "load 0" in out and "OPORT" in out
