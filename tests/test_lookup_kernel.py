"""The extra Lookup kernel (POS / Smart Label workload)."""

import numpy as np
import pytest

from repro.kernels import lookup
from repro.kernels.kernel import Target


class TestTable:
    def test_deterministic(self):
        assert lookup.generate_table() == lookup.generate_table()

    def test_values_below_mmu_sentinel(self):
        assert all(0 <= v < 8 for v in lookup.generate_table().values())

    def test_covers_all_keys(self):
        assert set(lookup.generate_table()) == set(range(16))


@pytest.mark.parametrize("target_name", [
    "flexicore4", "extacc", "flexicore4plus", "loadstore",
])
class TestExecution:
    def test_exhaustive_keys(self, target_name):
        target = Target.named(target_name)
        inputs = list(range(16))
        result = lookup.KERNEL.check(target, inputs)
        assert result.reason == "input_exhausted"

    def test_random_queries(self, target_name):
        target = Target.named(target_name)
        rng = np.random.default_rng(5)
        inputs = lookup.KERNEL.generate_inputs(rng, 20)
        lookup.KERNEL.check(target, inputs)


class TestCodeShape:
    def test_flags_extension_shrinks_the_ladder(self):
        base = lookup.KERNEL.program(Target.named("extacc[base]"))
        flags = lookup.KERNEL.program(Target.named("extacc[flags]"))
        assert flags.static_instructions < base.static_instructions

    def test_multi_page_on_base(self):
        program = lookup.KERNEL.program(Target.named("flexicore4"))
        assert len(program.pages) >= 2

    def test_mmu_traffic_on_upper_half(self):
        target = Target.named("flexicore4")
        # Key 15 lives in page 1: the query must cross pages and return.
        result, outputs = lookup.KERNEL.run(target, [15, 0])
        assert outputs == lookup.KERNEL.expected([15, 0])
        assert result.stats.page_switches >= 2
