"""Execution tracer tests."""

import pytest

from repro.asm import assemble
from repro.isa import get_isa
from repro.sim.trace import Tracer, trace_program

FC4 = get_isa("flexicore4")
EXT = get_isa("extacc")


class TestTraceEntries:
    def test_records_every_instruction(self):
        program = assemble("addi 1\naddi 2\nhalt\n", EXT)
        tracer, outputs = trace_program(program)
        assert len(tracer.entries) == 3
        assert [entry.text for entry in tracer.entries] == \
            ["addi 1", "addi 2", "halt"]

    def test_architectural_state_snapshots(self):
        program = assemble("addi 3\nstore 2\naddi 1\nhalt\n", EXT)
        tracer, _ = trace_program(program)
        assert tracer.entries[0].acc == 3
        assert tracer.entries[1].mem[2] == 3
        assert tracer.entries[2].acc == 4

    def test_oport_annotation(self):
        program = assemble("addi 9\nstore 1\nhalt\n", EXT)
        tracer, outputs = trace_program(program)
        assert outputs == [9]
        assert tracer.entries[0].oport is None
        assert tracer.entries[1].oport == 9

    def test_page_tracking_across_mmu(self):
        from repro.asm import Assembler
        from repro.kernels.macros import build_library

        source = """
    %farjump 1, there
.page 1
there:
    %ldi 2
    store 1
    %halt
"""
        program = Assembler(FC4, build_library(FC4)).assemble(source)
        tracer, outputs = trace_program(program)
        assert outputs == [2]
        pages = {entry.page for entry in tracer.entries}
        assert pages == {0, 1}

    def test_limit_bounds_memory(self):
        program = assemble("loop: addi 1\nnandi 0\nbrn loop\n", FC4)
        tracer, _ = trace_program(program, max_cycles=500, limit=50)
        assert len(tracer.entries) == 50

    def test_text_rendering(self):
        program = assemble("addi 1\nhalt\n", EXT)
        tracer, _ = trace_program(program)
        text = tracer.text()
        assert "addi 1" in text and "acc=" in text

    def test_text_windowing(self):
        program = assemble("addi 1\naddi 1\naddi 1\nhalt\n", EXT)
        tracer, _ = trace_program(program)
        assert len(tracer.text(first=1, count=2).splitlines()) == 2


class TestBranchTargets:
    def test_taken_branches_recovered(self):
        program = assemble(
            "nandi 0\nbrn target\naddi 1\ntarget: halt\n", EXT
        )
        tracer, _ = trace_program(program)
        assert tracer.taken_branch_targets() == [3]

    def test_straightline_has_no_targets(self):
        program = assemble("addi 1\naddi 1\nhalt\n", EXT)
        tracer, _ = trace_program(program)
        assert tracer.taken_branch_targets() == []

    def test_two_byte_instructions_not_misreported(self):
        # 'br' is two bytes: the fall-through must not look like a jump.
        program = assemble("xori 0\nbr n, 9\naddi 1\nhalt\n", EXT)
        tracer, _ = trace_program(program)
        assert tracer.taken_branch_targets() == []
