"""Execution tracer tests."""

import pytest

from repro.asm import assemble
from repro.isa import get_isa
from repro.sim.trace import (
    TraceEntry,
    Tracer,
    entries_from_jsonl,
    trace_program,
)

FC4 = get_isa("flexicore4")
EXT = get_isa("extacc")


class TestTraceEntries:
    def test_records_every_instruction(self):
        program = assemble("addi 1\naddi 2\nhalt\n", EXT)
        tracer, outputs = trace_program(program)
        assert len(tracer.entries) == 3
        assert [entry.text for entry in tracer.entries] == \
            ["addi 1", "addi 2", "halt"]

    def test_architectural_state_snapshots(self):
        program = assemble("addi 3\nstore 2\naddi 1\nhalt\n", EXT)
        tracer, _ = trace_program(program)
        assert tracer.entries[0].acc == 3
        assert tracer.entries[1].mem[2] == 3
        assert tracer.entries[2].acc == 4

    def test_oport_annotation(self):
        program = assemble("addi 9\nstore 1\nhalt\n", EXT)
        tracer, outputs = trace_program(program)
        assert outputs == [9]
        assert tracer.entries[0].oport is None
        assert tracer.entries[1].oport == 9

    def test_page_tracking_across_mmu(self):
        from repro.asm import Assembler
        from repro.kernels.macros import build_library

        source = """
    %farjump 1, there
.page 1
there:
    %ldi 2
    store 1
    %halt
"""
        program = Assembler(FC4, build_library(FC4)).assemble(source)
        tracer, outputs = trace_program(program)
        assert outputs == [2]
        pages = {entry.page for entry in tracer.entries}
        assert pages == {0, 1}

    def test_limit_bounds_memory(self):
        program = assemble("loop: addi 1\nnandi 0\nbrn loop\n", FC4)
        tracer, _ = trace_program(program, max_cycles=500, limit=50)
        assert len(tracer.entries) == 50

    def test_text_rendering(self):
        program = assemble("addi 1\nhalt\n", EXT)
        tracer, _ = trace_program(program)
        text = tracer.text()
        assert "addi 1" in text and "acc=" in text

    def test_text_windowing(self):
        program = assemble("addi 1\naddi 1\naddi 1\nhalt\n", EXT)
        tracer, _ = trace_program(program)
        assert len(tracer.text(first=1, count=2).splitlines()) == 2


class TestTextFormatting:
    def test_oport_write_rendered_in_hex(self):
        program = assemble("addi 9\nstore 1\nhalt\n", EXT)
        tracer, _ = trace_program(program)
        line = str(tracer.entries[1])
        assert line.endswith(" -> OPORT=0x9")

    def test_no_oport_suffix_without_write(self):
        program = assemble("addi 9\nstore 1\nhalt\n", EXT)
        tracer, _ = trace_program(program)
        assert "OPORT" not in str(tracer.entries[0])


class TestBoundedWindow:
    def test_run_continues_past_full_window(self):
        # The window stops growing at `limit`, but the simulator keeps
        # stepping: the program must still reach its halt.
        program = assemble(
            "\n".join(["addi 1"] * 20) + "\nstore 1\nhalt\n", EXT
        )
        tracer, outputs = trace_program(program, limit=5)
        assert len(tracer.entries) == 5
        assert tracer.entries[-1].index == 4
        assert outputs == [20 % 16]
        assert tracer.simulator.state.halted

    def test_window_keeps_earliest_entries(self):
        program = assemble("addi 1\naddi 2\naddi 3\nhalt\n", EXT)
        tracer, _ = trace_program(program, limit=2)
        assert [entry.text for entry in tracer.entries] == \
            ["addi 1", "addi 2"]


class TestExporter:
    def test_record_round_trip(self):
        program = assemble("addi 9\nstore 1\nhalt\n", EXT)
        tracer, _ = trace_program(program)
        for entry in tracer.entries:
            assert TraceEntry.from_record(entry.to_record()) == entry

    def test_jsonl_round_trip(self):
        program = assemble("addi 9\nstore 1\naddi 1\nhalt\n", EXT)
        tracer, _ = trace_program(program)
        restored = entries_from_jsonl(tracer.to_jsonl())
        assert restored == tracer.entries
        # Rendering survives the round trip, oport branch included.
        assert [str(entry) for entry in restored] == \
            [str(entry) for entry in tracer.entries]

    def test_jsonl_ignores_blank_lines(self):
        program = assemble("addi 1\nhalt\n", EXT)
        tracer, _ = trace_program(program)
        padded = "\n" + tracer.to_jsonl() + "\n\n"
        assert entries_from_jsonl(padded) == tracer.entries

    def test_records_are_plain_json(self):
        import json

        program = assemble("addi 1\nhalt\n", EXT)
        tracer, _ = trace_program(program)
        for line in tracer.to_jsonl().splitlines():
            record = json.loads(line)
            assert isinstance(record["mem"], list)
            assert isinstance(record["text"], str)


class TestBranchTargets:
    def test_taken_branches_recovered(self):
        program = assemble(
            "nandi 0\nbrn target\naddi 1\ntarget: halt\n", EXT
        )
        tracer, _ = trace_program(program)
        assert tracer.taken_branch_targets() == [3]

    def test_straightline_has_no_targets(self):
        program = assemble("addi 1\naddi 1\nhalt\n", EXT)
        tracer, _ = trace_program(program)
        assert tracer.taken_branch_targets() == []

    def test_two_byte_instructions_not_misreported(self):
        # 'br' is two bytes: the fall-through must not look like a jump.
        program = assemble("xori 0\nbr n, 9\naddi 1\nhalt\n", EXT)
        tracer, _ = trace_program(program)
        assert tracer.taken_branch_targets() == []
