"""Crash-safety of the on-disk stores: cache writes and JSONL state.

The conformance harness leans on two durability promises this file
pins down directly:

- a cache ``put`` that dies mid-write must never leave an entry that a
  later ``get`` trusts (no torn pickle, no metadata describing a value
  that was never stored), and a corrupt entry found on ``get`` is
  quarantined so the slot heals;
- concurrent ``append_jsonl`` writers must not tear each other's lines,
  and ``read_jsonl`` must survive -- and count -- torn lines left by
  older writers or crashes.
"""

import json
import multiprocessing
import os
import pickle

import pytest

from repro.engine import ResultCache
from repro.obs import state as obs_state


class ExplodingDump:
    """pickle.dump stand-in that writes half the payload, then dies."""

    def __init__(self, real_dump):
        self.real_dump = real_dump

    def __call__(self, value, handle, *args, **kwargs):
        handle.write(b"\x80\x05partial-garbage")
        handle.flush()
        raise OSError("simulated crash mid-write")


class TestCachePutCrash:
    def test_crashed_put_leaves_no_entry(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        monkeypatch.setattr(
            "repro.engine.cache.pickle.dump",
            ExplodingDump(pickle.dump),
        )
        assert cache.put("fn", "k" * 64, {"x": 1}) is False
        # Nothing survives: no data, no metadata, no temp litter.
        leftovers = list((tmp_path / "cache").rglob("*"))
        assert all(p.is_dir() for p in leftovers)
        hit, _ = cache.get("fn", "k" * 64)
        assert hit is False

    def test_crashed_overwrite_keeps_old_entry(self, tmp_path,
                                               monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        key = "k" * 64
        assert cache.put("fn", key, {"generation": 1}) is True
        monkeypatch.setattr(
            "repro.engine.cache.pickle.dump",
            ExplodingDump(pickle.dump),
        )
        assert cache.put("fn", key, {"generation": 2}) is False
        monkeypatch.undo()
        hit, value = cache.get("fn", key)
        assert hit and value == {"generation": 1}
        # The old metadata still describes the surviving value.
        meta_path = next((tmp_path / "cache").rglob("*.json"))
        with open(meta_path) as handle:
            assert json.load(handle)["key"] == key

    def test_meta_write_is_atomic(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache")
        real_replace = os.replace
        calls = []

        def tracking_replace(src, dst):
            calls.append(str(dst))
            return real_replace(src, dst)

        monkeypatch.setattr("repro.engine.cache.os.replace",
                            tracking_replace)
        cache.put("fn", "k" * 64, [1, 2, 3])
        assert any(dst.endswith(".pkl") for dst in calls)
        assert any(dst.endswith(".json") for dst in calls)


class TestCorruptEntryQuarantine:
    def corrupt(self, cache, fn="fn", key="k" * 64):
        cache.put(fn, key, {"good": True})
        data_path, meta_path = cache._paths(fn, key)
        data_path.write_bytes(b"\x80\x05 not a pickle at all")
        return data_path, meta_path

    def test_corrupt_pickle_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        data_path, meta_path = self.corrupt(cache)
        hit, value = cache.get("fn", "k" * 64)
        assert hit is False and value is None
        assert cache.corrupt == 1
        assert not data_path.exists() and not meta_path.exists()

    def test_next_put_starts_clean(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        self.corrupt(cache)
        cache.get("fn", "k" * 64)
        assert cache.put("fn", "k" * 64, {"fresh": 1}) is True
        hit, value = cache.get("fn", "k" * 64)
        assert hit and value == {"fresh": 1}

    def test_truncated_pickle_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = "j" * 64
        cache.put("fn", key, list(range(1000)))
        data_path, _ = cache._paths("fn", key)
        data_path.write_bytes(data_path.read_bytes()[:20])
        hit, _ = cache.get("fn", key)
        assert hit is False and cache.corrupt == 1

    def test_missing_entry_is_plain_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        hit, _ = cache.get("fn", "absent" * 11)
        assert hit is False
        assert cache.corrupt == 0 and cache.misses == 1

    def test_stats_report_corrupt_count(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        self.corrupt(cache)
        cache.get("fn", "k" * 64)
        assert cache.stats()["session_corrupt"] == 1


# ----------------------------------------------------------------------
# JSONL state: torn lines and concurrent appenders.
# ----------------------------------------------------------------------

def _appender(root, name, tag, count):
    for index in range(count):
        obs_state.append_jsonl(
            name, {"tag": tag, "index": index, "pad": "x" * 512},
            root=root,
        )


class TestJsonlDurability:
    def test_torn_trailing_line_skipped_and_counted(self, tmp_path):
        obs_state.append_jsonl("log.jsonl", {"ok": 1}, root=tmp_path)
        obs_state.append_jsonl("log.jsonl", {"ok": 2}, root=tmp_path)
        path = tmp_path / "log.jsonl"
        with open(path, "a") as handle:
            handle.write('{"torn": tru')  # a half-flushed record
        before = obs_state.malformed_line_count("log.jsonl")
        records = obs_state.read_jsonl("log.jsonl", root=tmp_path)
        assert records == [{"ok": 1}, {"ok": 2}]
        assert obs_state.malformed_line_count("log.jsonl") == before + 1

    def test_torn_middle_line_does_not_hide_later_records(self,
                                                          tmp_path):
        path = tmp_path / "log.jsonl"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"a": 1}\n{"b": \n{"c": 3}\n')
        records = obs_state.read_jsonl("log.jsonl", root=tmp_path)
        assert records == [{"a": 1}, {"c": 3}]

    def test_two_process_appends_never_tear(self, tmp_path):
        """Two writer processes interleave whole lines, not bytes."""
        ctx = multiprocessing.get_context("spawn")
        count = 200
        writers = [
            ctx.Process(target=_appender,
                        args=(str(tmp_path), "race.jsonl", tag, count))
            for tag in ("a", "b")
        ]
        for proc in writers:
            proc.start()
        for proc in writers:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        before = obs_state.malformed_line_count("race.jsonl")
        records = obs_state.read_jsonl("race.jsonl", root=tmp_path)
        # Every record parses (no torn lines), none are lost, and each
        # writer's records arrive in its own program order.
        assert obs_state.malformed_line_count("race.jsonl") == before
        assert len(records) == 2 * count
        for tag in ("a", "b"):
            indices = [r["index"] for r in records if r["tag"] == tag]
            assert indices == list(range(count))

    def test_append_survives_unwritable_dir(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file where the state dir should be")
        assert obs_state.append_jsonl(
            "log.jsonl", {"x": 1}, root=target
        ) is False
