"""Gate-level simulator machinery: levelization, faults, buses."""

import pytest

from repro.netlist.builder import NetlistBuilder
from repro.netlist.core import GateInst, Netlist
from repro.netlist.sim import CombinationalLoopError, GateLevelSimulator
from repro.tech.cells import get_cell


def counter_netlist(width=3):
    """A small synchronous counter: q <- q + 1 each cycle."""
    b = NetlistBuilder("counter")
    q = [b.net(f"q{i}") for i in range(width)]
    inc, _ = b.incrementer(q)
    for i in range(width):
        b.dff(inc[i], out=q[i])
        b.output(q[i])
    return b.build(), q


class TestSequentialBehaviour:
    def test_counter_counts(self):
        netlist, q = counter_netlist()
        sim = GateLevelSimulator(netlist)
        values = []
        for _ in range(10):
            sim.step()
            values.append(sum(sim.values[q[i]] << i for i in range(3)))
        assert values == [1, 2, 3, 4, 5, 6, 7, 0, 1, 2]

    def test_cycle_counter(self):
        netlist, _ = counter_netlist()
        sim = GateLevelSimulator(netlist)
        for _ in range(5):
            sim.step()
        assert sim.cycles == 5


class TestBusAccess:
    def test_read_bus(self):
        b = NetlistBuilder("bus")
        x = b.input_bus("x", 4)
        for i, net in enumerate(x):
            b.output(b.buf(net), name=f"y{i}")
        sim = GateLevelSimulator(b.build())
        sim.set_inputs({"x": 0b1010})
        sim._settle(count_toggles=False)
        assert sim.read_bus("y", 4) == 0b1010

    def test_missing_bus_raises(self):
        netlist, _ = counter_netlist()
        sim = GateLevelSimulator(netlist)
        with pytest.raises(KeyError):
            sim.read_bus("nothere")
        with pytest.raises(KeyError):
            sim.set_inputs({"nothere": 1})


class TestLoopDetection:
    def test_combinational_loop_raises(self):
        netlist = Netlist(name="loop")
        cell = get_cell("INV_X1")
        netlist.gates.append(GateInst("i1", cell, ("b",), "a", "core"))
        netlist.gates.append(GateInst("i2", cell, ("a",), "b", "core"))
        with pytest.raises(CombinationalLoopError):
            GateLevelSimulator(netlist)


class TestFaultInjection:
    def test_stuck_output_propagates(self):
        b = NetlistBuilder("faulty")
        a = b.input("a")
        n1 = b.inv(a)
        n2 = b.inv(n1)
        b.output(n2)
        netlist = b.build()
        sim = GateLevelSimulator(netlist)
        inv1 = netlist.gates[0].name
        sim.inject_fault(inv1, 1)
        sim.set_inputs({"a": 1})
        sim._settle(count_toggles=False)
        # Healthy: n2 == a == 1.  Faulted: n1 stuck 1 -> n2 == 0.
        assert sim.values[n2] == 0

    def test_clear_faults_restores(self):
        b = NetlistBuilder("faulty")
        a = b.input("a")
        out = b.inv(b.inv(a))
        b.output(out)
        netlist = b.build()
        sim = GateLevelSimulator(netlist)
        sim.set_inputs({"a": 1})
        sim.inject_fault(netlist.gates[0].name, 1)
        sim.clear_faults()
        sim._settle(count_toggles=False)
        assert sim.values[out] == 1

    def test_unknown_gate_rejected(self):
        netlist, _ = counter_netlist()
        sim = GateLevelSimulator(netlist)
        with pytest.raises(KeyError):
            sim.inject_fault("bogus", 0)

    def test_flop_fault(self):
        netlist, q = counter_netlist()
        flop = next(g for g in netlist.gates if g.sequential)
        sim = GateLevelSimulator(netlist)
        sim.inject_fault(flop.name, 0)
        for _ in range(4):
            sim.step()
        assert sim.values[flop.output] == 0  # held at stuck value


class TestToggleCoverage:
    def test_counter_toggles_every_gate(self):
        netlist, _ = counter_netlist()
        sim = GateLevelSimulator(netlist)
        for _ in range(16):
            sim.step()
        fraction, mean = sim.toggle_coverage()
        assert fraction == 1.0
        assert mean > 1.0

    def test_idle_design_has_zero_mean(self):
        b = NetlistBuilder("idle")
        a = b.input("a")
        b.output(b.buf(a))
        sim = GateLevelSimulator(b.build())
        sim.step()
        _, mean = sim.toggle_coverage()
        assert mean == 0.0


class TestNetlistMetrics:
    def test_cell_histogram(self):
        netlist, _ = counter_netlist()
        histogram = netlist.cell_histogram()
        assert histogram["DFF_X1"] == 3

    def test_function_histogram(self):
        netlist, _ = counter_netlist()
        assert netlist.function_histogram()["dff"] == 3

    def test_breakdown_fractions_sum_to_one(self):
        from repro.netlist import build_flexicore4

        breakdown = build_flexicore4().module_breakdown()
        assert sum(e["area_fraction"] for e in breakdown.values()) == \
            pytest.approx(1.0)
        assert sum(e["pullup_fraction"] for e in breakdown.values()) == \
            pytest.approx(1.0)
