"""Functional simulator: halting, statistics, IO and peripherals."""

import pytest

from repro.asm import assemble
from repro.isa import get_isa
from repro.sim import (
    HeldInput,
    InputExhausted,
    InputStream,
    OutputSink,
    ProgramMemory,
    SimulationError,
    Simulator,
    run_program,
)

FC4 = get_isa("flexicore4")
EXT = get_isa("extacc")


class TestHalting:
    def test_halt_instruction(self):
        program = assemble("addi 1\nhalt\n", EXT)
        result, _ = run_program(program)
        assert result.halted and result.reason == "halt"
        assert result.instructions == 2

    def test_self_branch_is_halt(self):
        program = assemble("nandi 0\nstop: brn stop\n", FC4)
        result, _ = run_program(program)
        assert result.halted and result.reason == "self_branch"

    def test_self_branch_detection_can_be_disabled(self):
        program = assemble("nandi 0\nstop: brn stop\n", FC4)
        simulator = Simulator(FC4, program, halt_on_self_branch=False)
        result = simulator.run(max_cycles=50)
        assert result.reason == "max_cycles"
        assert result.instructions == 50

    def test_input_exhaustion(self):
        program = assemble(
            "loop: load 0\nstore 1\nnandi 0\nbrn loop\n", FC4
        )
        result, sink = run_program(program, inputs=[1, 2])
        assert result.reason == "input_exhausted"
        assert sink.values == [1, 2]

    def test_max_cycles(self):
        program = assemble("loop: addi 1\nnandi 0\nbrn loop\n", FC4)
        result, _ = run_program(program, max_cycles=100)
        assert result.reason == "max_cycles"
        assert result.instructions == 100


class TestStatistics:
    def test_class_and_mnemonic_counts(self):
        program = assemble("addi 1\nload 2\nstore 1\nnandi 0\nbrn 0\n",
                           FC4)
        simulator = Simulator(FC4, program)
        for _ in range(5):
            simulator.step()
        stats = simulator.stats
        assert stats.instructions == 5
        assert stats.by_mnemonic["addi"] == 1
        assert stats.by_class["memory"] == 2
        assert stats.by_class["branch"] == 1
        assert stats.taken_branches == 1

    def test_fetched_bytes_counts_multibyte(self):
        program = assemble("br nzp, 2\nhalt\n", EXT)
        result, _ = run_program(program)
        assert result.stats.fetched_bytes == 3  # 2-byte br + 1-byte halt
        assert result.stats.by_size == {2: 1, 1: 1}

    def test_branch_fraction(self):
        program = assemble("addi 1\nnandi 0\nbrn x\nx: halt\n", EXT)
        result, _ = run_program(program)
        assert result.stats.branch_fraction == pytest.approx(1 / 4)

    def test_untaken_branch_not_counted_taken(self):
        program = assemble("xori 0\nbrn 5\nhalt\n", EXT)
        result, _ = run_program(program)
        assert result.stats.taken_branches == 0


class TestIo:
    def test_output_sink_records_cycles(self):
        program = assemble("addi 3\nstore 1\naddi 1\nstore 1\nhalt\n",
                           EXT)
        result, sink = run_program(program)
        assert sink.values == [3, 4]
        assert sink.cycles == [1, 3]  # instruction indices of the stores

    def test_held_input(self):
        held = HeldInput(9)
        program = assemble("load 0\nstore 1\nload 0\nstore 1\nhalt\n",
                           EXT)
        sink = OutputSink()
        simulator = Simulator(EXT, program, input_fn=held, output=sink)
        simulator.run()
        assert sink.values == [9, 9]
        assert held.reads == 2

    def test_input_stream_hold_mode(self):
        stream = InputStream([4], on_exhausted="hold")
        assert stream() == 4
        assert stream() == 4

    def test_input_stream_zero_mode(self):
        stream = InputStream([4], on_exhausted="zero")
        stream()
        assert stream() == 0

    def test_input_stream_raise_mode(self):
        stream = InputStream([], on_exhausted="raise")
        with pytest.raises(InputExhausted):
            stream()

    def test_input_stream_bad_mode(self):
        with pytest.raises(ValueError):
            InputStream([], on_exhausted="explode")

    def test_sink_as_bytes(self):
        sink = OutputSink()
        for value in (0x1, 0x2, 0xF, 0x0):
            sink.write(value)
        assert sink.as_bytes(width=4) == [0x21, 0x0F]

    def test_sink_as_bytes_odd_count(self):
        sink = OutputSink()
        sink.write(1)
        with pytest.raises(ValueError):
            sink.as_bytes()


class TestProgramMemory:
    def test_mmu_attached_automatically_for_multipage(self):
        source = "addi 1\n.page 1\naddi 2\n"
        program = assemble(source, FC4)
        simulator = Simulator(FC4, program)
        assert simulator.mmu is not None

    def test_no_mmu_for_single_page(self):
        program = assemble("addi 1\n", FC4)
        simulator = Simulator(FC4, program)
        assert simulator.mmu is None

    def test_oversized_image_rejected(self):
        with pytest.raises(ValueError):
            ProgramMemory(bytes(17 * 128))

    def test_fetch_wraps_within_page(self):
        memory = ProgramMemory(bytes(range(64)) + bytes(64))
        base, window = memory.fetch_window(127)
        assert base == 127
        assert window[1] == 0  # wrapped to page-local address 0

    def test_fetch_wrap_carries_page_start_bytes(self):
        # The precomputed windows must wrap to the *same page's* start,
        # not the next page's bytes.
        image = bytes([0xAA]) + bytes(126) + bytes([0xBB]) \
            + bytes([0xCC]) + bytes(127)
        memory = ProgramMemory(image)
        _, window = memory.fetch_window(127)
        assert window[0] == 0xBB
        assert window[1] == 0xAA  # page 0's byte 0, not page 1's 0xCC

    def test_fetch_beyond_image_reads_zero_rom(self):
        from repro.sim.mmu import Mmu

        mmu = Mmu(port_width=4)
        memory = ProgramMemory(bytes([0x11] * 128), mmu)
        mmu.page = 3  # beyond the 1-page image
        _, window = memory.fetch_window(5)
        assert window == bytes(4)

    def test_reset_clears_everything(self):
        program = assemble("load 0\nstore 1\nhalt\n", EXT)
        simulator = Simulator(EXT, program,
                              input_fn=InputStream([5], "hold"))
        simulator.run()
        simulator.reset()
        assert simulator.state.pc == 0
        assert simulator.stats.instructions == 0
        assert not simulator.state.halted


class TestHaltReason:
    def test_halt_reason_is_per_instance(self):
        # Regression: _halt_reason used to be a class attribute; it must
        # be owned by each instance so one simulator's halt can never
        # bleed into another's.
        looping = assemble("nandi 0\nstop: brn stop\n", FC4)
        first = Simulator(FC4, looping)
        first.run()
        assert first._halt_reason == "self_branch"
        second = Simulator(FC4, looping)
        assert second._halt_reason == "halt"
        assert "_halt_reason" not in vars(Simulator)

    def test_reset_restores_halt_reason(self):
        program = assemble("nandi 0\nstop: brn stop\n", FC4)
        simulator = Simulator(FC4, program)
        result = simulator.run()
        assert result.reason == "self_branch"
        simulator.reset()
        assert simulator._halt_reason == "halt"


class TestErrors:
    def test_decode_fault_raises_simulation_error(self):
        # 0x38 is an undefined FlexiCore4 M-type hole.
        simulator = Simulator(FC4, bytes([0b0011_1000]))
        with pytest.raises(SimulationError):
            simulator.step()
