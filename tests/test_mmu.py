"""MMU page-switch transducer protocol tests (Section 5.1)."""

import pytest

from repro.sim.mmu import ARM_COUNT, Mmu, PAGE_SWITCH_DELAY


def make_mmu(**kwargs):
    sink = []
    mmu = Mmu(**kwargs).attach(sink.append)
    return mmu, sink


class TestArming:
    def test_sentinel_value_by_port_width(self):
        assert Mmu(port_width=4).sentinel == 0xA
        assert Mmu(port_width=8).sentinel == 0xAA

    def test_three_sentinels_arm(self):
        mmu, _ = make_mmu()
        for _ in range(ARM_COUNT):
            mmu.observe_output(0xA)
        assert mmu.armed

    def test_two_sentinels_do_not_arm(self):
        mmu, _ = make_mmu()
        mmu.observe_output(0xA)
        mmu.observe_output(0xA)
        assert not mmu.armed

    def test_extra_sentinels_keep_armed(self):
        mmu, _ = make_mmu()
        for _ in range(ARM_COUNT + 3):
            mmu.observe_output(0xA)
        assert mmu.armed

    def test_page_write_after_arming(self):
        mmu, _ = make_mmu()
        for _ in range(ARM_COUNT):
            mmu.observe_output(0xA)
        mmu.observe_output(2)
        assert mmu.page_switches == 1
        # The page takes effect only after the delay shadow.
        assert mmu.page == 0


class TestDataForwarding:
    def test_plain_data_forwards(self):
        mmu, sink = make_mmu()
        for value in (1, 2, 3):
            mmu.observe_output(value)
        assert sink == [1, 2, 3]

    def test_short_sentinel_run_forwards_as_data(self):
        mmu, sink = make_mmu()
        mmu.observe_output(0xA)
        mmu.observe_output(0xA)
        mmu.observe_output(5)  # breaks the run: all three were data
        assert sink == [0xA, 0xA, 5]

    def test_escape_sequence_is_consumed(self):
        mmu, sink = make_mmu()
        for _ in range(ARM_COUNT):
            mmu.observe_output(0xA)
        mmu.observe_output(1)  # page number
        assert sink == []

    def test_leading_data_sentinel_is_recovered(self):
        """A data 0xA directly before a real escape must still reach the
        peripheral (the Calculator remainder=10 case)."""
        mmu, sink = make_mmu()
        mmu.observe_output(0xA)            # data
        for _ in range(ARM_COUNT):
            mmu.observe_output(0xA)        # escape
        mmu.observe_output(2)              # page
        assert sink == [0xA]
        assert mmu.page_switches == 1

    def test_two_leading_data_sentinels_recovered(self):
        mmu, sink = make_mmu()
        for _ in range(2 + ARM_COUNT):
            mmu.observe_output(0xA)
        mmu.observe_output(0)
        assert sink == [0xA, 0xA]

    def test_forward_escapes_mode(self):
        mmu, sink = make_mmu(forward_escapes=True)
        for _ in range(ARM_COUNT):
            mmu.observe_output(0xA)
        mmu.observe_output(3)
        assert sink == [0xA] * ARM_COUNT + [3]
        assert mmu.page_switches == 1


class TestPageSwitchTiming:
    def test_delay_shadow_fetches_old_page(self):
        mmu, _ = make_mmu()
        for _ in range(ARM_COUNT):
            mmu.observe_output(0xA)
        mmu.observe_output(5)
        # The next PAGE_SWITCH_DELAY fetches still use the old page.
        for _ in range(PAGE_SWITCH_DELAY):
            assert mmu.on_fetch() == 0
        assert mmu.on_fetch() == 5
        assert mmu.page == 5

    def test_fetches_without_pending_switch(self):
        mmu, _ = make_mmu()
        assert mmu.on_fetch() == 0
        assert mmu.on_fetch() == 0

    def test_reset(self):
        mmu, _ = make_mmu()
        for _ in range(ARM_COUNT):
            mmu.observe_output(0xA)
        mmu.observe_output(7)
        mmu.reset()
        assert mmu.page == 0
        assert not mmu.armed
        assert mmu.on_fetch() == 0

    def test_consecutive_switches(self):
        mmu, _ = make_mmu()
        for page in (1, 2, 3):
            for _ in range(ARM_COUNT):
                mmu.observe_output(0xA)
            mmu.observe_output(page)
            for _ in range(PAGE_SWITCH_DELAY + 1):
                mmu.on_fetch()
            assert mmu.page == page
        assert mmu.page_switches == 3


class TestEndToEnd:
    def test_farjump_through_simulator(self):
        """A program that far-jumps to page 1 and emits a marker there."""
        from repro.asm import Assembler
        from repro.isa import get_isa
        from repro.kernels.macros import build_library
        from repro.sim import run_program

        isa = get_isa("flexicore4")
        source = """
    %ldi 5
    store 1
    %farjump 1, there
.page 1
there:
    %ldi 7
    store 1
    %halt
"""
        program = Assembler(isa, build_library(isa)).assemble(source)
        result, sink = run_program(program)
        assert sink.values == [5, 7]
        assert result.stats.page_switches == 1

    def test_round_trip_between_pages(self):
        from repro.asm import Assembler
        from repro.isa import get_isa
        from repro.kernels.macros import build_library
        from repro.sim import run_program

        isa = get_isa("flexicore4")
        source = """
    %ldi 1
    store 1
    %farjump 1, mid
back:
    %ldi 3
    store 1
    %halt
.page 1
mid:
    %ldi 2
    store 1
    %farjump 0, back
"""
        program = Assembler(isa, build_library(isa)).assemble(source)
        result, sink = run_program(program)
        assert sink.values == [1, 2, 3]
        assert result.stats.page_switches == 2
