"""End-to-end tests of ``repro.service``: real sockets, real jobs.

Every test starts a full service (asyncio HTTP server on an ephemeral
port, executor-backed job runner, shared result cache in tmp_path) and
talks to it with the bundled clients -- the same path ``repro client``
and the CI smoke job use.
"""

import http.client
import time

import pytest

from repro import obs
from repro.engine import EngineCancelled
from repro.obs import flight as obs_flight
from repro.obs import state as obs_state
from repro.service import (
    CANCELLED,
    COMPLETED,
    Field,
    JobStore,
    ServiceApiError,
    ServiceClient,
    ServiceConfig,
    Tenant,
    TenantRegistry,
    TokenBucket,
    ValidationError,
    register_job_type,
    start_in_thread,
)
from repro.service import jobs as service_jobs
from repro.service.artifacts import ArtifactStore
from repro.service.jobs import validate_params
from repro.service.slo import SloMeter, outcome_class
from repro.service.state import JobRecord
from repro.service.top import render_dashboard

KERNEL_PARAMS = {"kernel": "Parity Check", "transactions": 3}


def _sleep_runner(params, ctx):
    """Test-only job: cancellable busy-wait, no engine involved."""
    deadline = time.monotonic() + params["seconds"]
    while time.monotonic() < deadline:
        if ctx.record.cancel_requested:
            raise EngineCancelled("test sleep cancelled")
        time.sleep(0.02)
    return {"slept": params["seconds"]}, []


register_job_type(
    "sleep_test", "test-only cancellable sleeper",
    {"seconds": Field(float, default=0.2, minimum=0.0, maximum=30.0)},
    _sleep_runner,
)


def _registry():
    return TenantRegistry([
        Tenant(name="alice", key="alice-key", rate=1000.0, burst=1000,
               max_active=4),
        Tenant(name="bob", key="bob-key", rate=1000.0, burst=1000,
               max_active=2),
    ])


@pytest.fixture()
def handle(tmp_path):
    instance = start_in_thread(ServiceConfig(
        port=0, cache=str(tmp_path / "svc-cache"), tenants=_registry(),
        max_running=2, max_queued=2,
    ))
    yield instance
    instance.stop()


@pytest.fixture()
def alice(handle):
    return ServiceClient(handle.base_url, "alice-key", timeout=120)


@pytest.fixture()
def bob(handle):
    return ServiceClient(handle.base_url, "bob-key", timeout=120)


class TestRoundTrip:
    def test_two_tenants_yield_and_dse(self, alice, bob):
        """The ISSUE acceptance path: two tenants, a yield study and a
        DSE sweep, events streamed, artifacts fetched."""
        yield_doc = alice.submit("yield_study", {
            "core": "flexicore4", "wafers": 1, "seed": 7,
        })
        dse_doc = bob.submit("dse_sweep", {
            "designs": ["FlexiCore4"], "transactions": 2,
        })

        yield_final = alice.wait(yield_doc["id"], timeout=300)
        dse_final = bob.wait(dse_doc["id"], timeout=300)
        assert yield_final["status"] == COMPLETED
        assert dse_final["status"] == COMPLETED

        summary = yield_final["result"]["summary"]
        assert set(summary) == {"3", "4.5"}
        assert 0.0 <= summary["3"]["full"] <= 1.0
        metrics = dse_final["result"]["designs"]["FlexiCore4"]
        assert metrics["gate_count"] > 0
        assert metrics["kernels"]

        events = list(alice.events(yield_doc["id"]))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "queued"
        assert "started" in kinds
        assert kinds[-1] == "completed"
        assert [event["seq"] for event in events] == \
            list(range(len(events)))
        assert any(kind == "engine_stage" for kind in kinds)

        assert yield_final["artifacts"]
        text = alice.artifact(
            yield_final["artifacts"][0]["digest"]
        ).decode()
        assert "yield study" in text
        assert "flexicore4" in text

    def test_resubmission_is_cache_hit(self, alice):
        first = alice.run("kernel_run", KERNEL_PARAMS)
        assert first["status"] == COMPLETED
        assert first["cache_hit"] is False

        started = time.monotonic()
        second = alice.run("kernel_run", KERNEL_PARAMS)
        elapsed = time.monotonic() - started
        assert second["status"] == COMPLETED
        assert second["cache_hit"] is True
        assert second["result"] == first["result"]
        assert elapsed < 10.0
        # Identical results render identical artifacts -> same digest.
        assert [a["digest"] for a in second["artifacts"]] == \
            [a["digest"] for a in first["artifacts"]]

    def test_cache_is_shared_across_tenants(self, alice, bob):
        alice_doc = alice.run("kernel_run", KERNEL_PARAMS)
        bob_doc = bob.run("kernel_run", KERNEL_PARAMS)
        assert alice_doc["cache_hit"] is False
        assert bob_doc["cache_hit"] is True

    def test_wafer_maps_job(self, alice):
        doc = alice.run("wafer_maps", {
            "core": "flexicore4", "seed": 3, "voltages": [4.5],
        })
        assert doc["status"] == COMPLETED
        assert "4.5" in doc["result"]["voltages"]
        names = [a["name"] for a in doc["artifacts"]]
        assert "figure6.txt" in names
        assert "figure7.txt" in names
        fig6 = next(a for a in doc["artifacts"]
                    if a["name"] == "figure6.txt")
        assert "Figure 6" in alice.artifact(fig6["digest"]).decode()

    def test_conformance_job(self, alice):
        doc = alice.run("conformance", {
            "seed": 0, "budget": 4, "oracles": ["dispatch"],
        })
        assert doc["status"] == COMPLETED
        assert doc["result"]["cases"] > 0
        assert doc["result"]["divergences"] == []
        # Campaigns must execute, never replay: no cache hit even on
        # an identical resubmission.
        again = alice.run("conformance", {
            "seed": 0, "budget": 4, "oracles": ["dispatch"],
        })
        assert again["cache_hit"] is False

    def test_types_and_stats_and_health(self, alice):
        types = alice.types()
        assert {"yield_study", "dse_sweep", "conformance",
                "kernel_run", "wafer_maps"} <= set(types)
        assert types["yield_study"]["params"]["core"]["required"]
        stats = alice.stats()
        assert stats["tenants"] == ["alice", "bob"]
        assert "cache" in stats
        assert alice.health()["ok"] is True


class TestAdmission:
    def test_unknown_key_is_401(self, handle):
        client = ServiceClient(handle.base_url, "wrong-key")
        with pytest.raises(ServiceApiError) as info:
            client.types()
        assert info.value.status == 401

    def test_unknown_type_is_400(self, alice):
        with pytest.raises(ServiceApiError) as info:
            alice.submit("no_such_type", {})
        assert info.value.status == 400
        assert "no_such_type" in info.value.message

    def test_bad_params_are_400(self, alice):
        for params in (
            {"core": "not-a-core"},            # out of choices
            {"core": "flexicore4", "wafers": "two"},  # wrong type
            {"core": "flexicore4", "bogus": 1},       # unknown name
            {},                                       # missing required
            {"core": "flexicore4", "wafers": 0},      # below minimum
        ):
            with pytest.raises(ServiceApiError) as info:
                alice.submit("yield_study", params)
            assert info.value.status == 400

    def test_quota_is_403_and_isolated(self, alice, bob):
        """Bob (max_active=2) hitting his quota must not disturb
        Alice's in-flight jobs."""
        first = bob.submit("sleep_test", {"seconds": 2.0})
        second = bob.submit("sleep_test", {"seconds": 2.0})
        with pytest.raises(ServiceApiError) as info:
            bob.submit("sleep_test", {"seconds": 0.1})
        assert info.value.status == 403
        assert info.value.code == "quota_exceeded"

        # Alice is unaffected: her quota is her own.
        alice_doc = alice.submit("sleep_test", {"seconds": 0.1})
        assert alice.wait(alice_doc["id"], timeout=60)["status"] in (
            COMPLETED, CANCELLED
        )
        bob.cancel(first["id"])
        bob.cancel(second["id"])
        bob.wait(first["id"], timeout=60)
        bob.wait(second["id"], timeout=60)

    def test_rate_limit_is_429_with_retry_after(self, tmp_path):
        registry = TenantRegistry([
            Tenant(name="slow", key="slow-key", rate=0.5, burst=1,
                   max_active=8),
        ])
        handle = start_in_thread(ServiceConfig(
            port=0, cache=str(tmp_path / "rate-cache"),
            tenants=registry, max_running=1, max_queued=8,
        ))
        try:
            client = ServiceClient(handle.base_url, "slow-key")
            first = client.submit("sleep_test", {"seconds": 0.05})
            with pytest.raises(ServiceApiError) as info:
                client.submit("sleep_test", {"seconds": 0.05})
            assert info.value.status == 429
            assert info.value.code == "rate_limited"
            assert info.value.retry_after is not None
            assert info.value.retry_after >= 1
            client.wait(first["id"], timeout=60)
        finally:
            handle.stop()

    def test_backlog_is_429(self, tmp_path):
        handle = start_in_thread(ServiceConfig(
            port=0, cache=str(tmp_path / "bp-cache"),
            tenants=_registry(), max_running=1, max_queued=1,
        ))
        try:
            alice = ServiceClient(handle.base_url, "alice-key")
            bob = ServiceClient(handle.base_url, "bob-key")
            running = alice.submit("sleep_test", {"seconds": 2.0})
            queued = bob.submit("sleep_test", {"seconds": 0.05})
            with pytest.raises(ServiceApiError) as info:
                alice.submit("sleep_test", {"seconds": 0.05})
            assert info.value.status == 429
            assert info.value.code == "backlog_full"
            # The jobs already admitted still complete.
            alice.cancel(running["id"])
            assert bob.wait(queued["id"], timeout=60)["status"] == \
                COMPLETED
        finally:
            handle.stop()

    def test_jobs_are_tenant_scoped(self, alice, bob):
        doc = alice.run("kernel_run", KERNEL_PARAMS)
        with pytest.raises(ServiceApiError) as info:
            bob.status(doc["id"])
        assert info.value.status == 404
        assert any(j["id"] == doc["id"] for j in alice.jobs())
        assert all(j["id"] != doc["id"] for j in bob.jobs())

    def test_unknown_artifact_is_404(self, alice):
        with pytest.raises(ServiceApiError) as info:
            alice.artifact("f" * 64)
        assert info.value.status == 404
        with pytest.raises(ServiceApiError) as info:
            alice.artifact("../../etc/passwd")
        assert info.value.status == 404


class TestCancel:
    def test_cancel_running_job(self, alice):
        doc = alice.submit("sleep_test", {"seconds": 20.0})
        deadline = time.monotonic() + 10
        while alice.status(doc["id"])["status"] != "running":
            assert time.monotonic() < deadline
            time.sleep(0.02)
        started = time.monotonic()
        alice.cancel(doc["id"])
        final = alice.wait(doc["id"], timeout=30)
        assert final["status"] == CANCELLED
        assert time.monotonic() - started < 10
        events = [e["event"] for e in alice.events(doc["id"])]
        assert "cancel_requested" in events
        assert events[-1] == "cancelled"

    def test_cancel_queued_job(self, tmp_path):
        handle = start_in_thread(ServiceConfig(
            port=0, cache=str(tmp_path / "cq-cache"),
            tenants=_registry(), max_running=1, max_queued=2,
        ))
        try:
            alice = ServiceClient(handle.base_url, "alice-key")
            running = alice.submit("sleep_test", {"seconds": 2.0})
            queued = alice.submit("sleep_test", {"seconds": 10.0})
            final = alice.cancel(queued["id"])
            # Depending on timing the executor may already have
            # started it; either way it must reach CANCELLED fast.
            final = alice.wait(queued["id"], timeout=30)
            assert final["status"] == CANCELLED
            alice.cancel(running["id"])
        finally:
            handle.stop()

    def test_failed_job_reports_error(self, alice):
        doc = alice.run("dse_sweep", {"designs": ["NoSuchDesign"],
                                      "transactions": 1})
        assert doc["status"] == "failed"
        assert "NoSuchDesign" in doc["error"]
        assert "result" not in doc


class TestDrain:
    def test_drain_rejects_new_submissions(self, handle, alice):
        doc = alice.submit("sleep_test", {"seconds": 5.0})
        leftovers = handle.service.drain(grace_s=0.2)
        assert leftovers  # the sleeper outlived the grace period
        with pytest.raises(ServiceApiError) as info:
            alice.submit("kernel_run", KERNEL_PARAMS)
        assert info.value.status == 503
        final = alice.wait(doc["id"], timeout=30)
        assert final["status"] == CANCELLED


class TestUnits:
    def test_token_bucket(self):
        bucket = TokenBucket(rate=10.0, burst=2)
        assert bucket.try_acquire() == (True, 0.0)
        assert bucket.try_acquire()[0] is True
        granted, retry = bucket.try_acquire()
        assert granted is False
        assert 0.0 < retry <= 0.1

    def test_registry_rejects_duplicates(self):
        with pytest.raises(ValueError):
            TenantRegistry([
                Tenant(name="a", key="k"),
                Tenant(name="b", key="k"),
            ])
        with pytest.raises(ValueError):
            TenantRegistry([
                Tenant(name="a", key="k1"),
                Tenant(name="a", key="k2"),
            ])

    def test_registry_from_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(
            '{"tenants": [{"name": "x", "key": "kx", "rate": 3,'
            ' "burst": 5, "max_active": 7}]}'
        )
        registry = TenantRegistry.from_file(path)
        tenant = registry.authenticate("kx")
        assert tenant.name == "x"
        assert tenant.max_active == 7
        path.write_text('{"tenants": []}')
        with pytest.raises(ValueError):
            TenantRegistry.from_file(path)

    def test_validate_params(self):
        schema = {
            "n": Field(int, default=2, minimum=1, maximum=4),
            "name": Field(str, required=True),
        }
        assert validate_params(schema, {"name": "x"}) == \
            {"n": 2, "name": "x"}
        for bad in ({"name": "x", "n": 9}, {"name": "x", "n": True},
                    {"n": 1}, {"name": "x", "zzz": 0}, "not-a-dict"):
            with pytest.raises(ValidationError):
                validate_params(schema, bad)

    def test_job_store_evicts_only_terminal(self):
        store = JobStore(max_records=2)
        live = JobRecord("t", "sleep_test", {})
        done = JobRecord("t", "sleep_test", {})
        done.set_status(COMPLETED)
        store.add(done)
        store.add(live)
        extra = JobRecord("t", "sleep_test", {})
        store.add(extra)
        assert store.get(done.id) is None      # evicted (terminal)
        assert store.get(live.id) is live      # kept (still active)
        assert store.active_count("t") == 2

    def test_artifact_store_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "arts")
        descriptor = store.put("a.txt", "hello", "text/plain")
        again = store.put("a.txt", "hello", "text/plain")
        assert descriptor["digest"] == again["digest"]
        meta, data = store.get(descriptor["digest"])
        assert data == b"hello"
        assert meta["name"] == "a.txt"
        with pytest.raises(KeyError):
            store.get("0" * 64)
        with pytest.raises(KeyError):
            store.get("../sneaky")


# ----------------------------------------------------------------------
# Tracing: traceparent in, span tree out
# ----------------------------------------------------------------------

TRACEPARENT = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"


class TestTracing:
    @pytest.fixture()
    def traced_handle(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STATE_DIR",
                           str(tmp_path / "obs-state"))
        obs.reset()
        instance = start_in_thread(ServiceConfig(
            port=0, cache=str(tmp_path / "trace-cache"),
            tenants=_registry(), engine_jobs=2,
            max_running=2, max_queued=4,
        ))
        yield instance
        instance.stop()
        obs.reset()

    def test_client_traceparent_reaches_worker_spans(
            self, traced_handle):
        """The acceptance path: a client-supplied traceparent yields a
        span tree whose leaves ran in worker processes, all stamped
        with the same trace id."""
        client = ServiceClient(traced_handle.base_url, "alice-key",
                               timeout=120)
        doc = client.submit(
            "yield_study",
            {"core": "flexicore4", "wafers": 2, "seed": 3},
            traceparent=TRACEPARENT,
        )
        assert doc["trace_id"] == "ab" * 16
        assert doc["traceparent"].startswith("00-" + "ab" * 16 + "-")
        final = client.wait(doc["id"], timeout=120)
        assert final["status"] == COMPLETED

        trace = client.trace(doc["id"])
        assert trace["trace_id"] == "ab" * 16
        assert trace["complete"] is True
        spans = trace["spans"]
        assert spans
        assert all(span["trace"] == "ab" * 16 for span in spans)
        names = {span["name"] for span in spans}
        assert "service.job" in names
        processes = {span.get("process", "main") for span in spans}
        assert any(process.startswith("worker-")
                   for process in processes), processes
        assert "service.job" in trace["tree"]

    def test_minted_trace_and_chrome_export(self, traced_handle):
        client = ServiceClient(traced_handle.base_url, "alice-key",
                               timeout=120)
        doc = client.submit("sleep_test", {"seconds": 0.02})
        trace_id = doc["trace_id"]
        assert len(trace_id) == 32
        int(trace_id, 16)   # well-formed hex
        client.wait(doc["id"], timeout=30)
        chrome = client.trace(doc["id"], format="chrome")
        assert "traceEvents" in chrome
        assert any(event.get("name") == "service.job"
                   for event in chrome["traceEvents"])

    def test_jsonl_log_records_carry_trace_id(self, traced_handle):
        obs.configure(log_level="debug", persist_log=True)
        client = ServiceClient(traced_handle.base_url, "alice-key",
                               timeout=120)
        doc = client.submit(
            "yield_study", {"core": "flexicore4", "wafers": 1,
                            "seed": 11},
            traceparent=TRACEPARENT,
        )
        client.wait(doc["id"], timeout=120)
        records = obs_state.read_jsonl("log.jsonl")
        assert any(record.get("trace_id") == "ab" * 16
                   for record in records), \
            "no JSONL log record carried the request trace id"

    def test_tracing_disabled_is_404(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STATE_DIR",
                           str(tmp_path / "obs-state"))
        obs.reset()
        handle = start_in_thread(ServiceConfig(
            port=0, cache=str(tmp_path / "nt-cache"),
            tenants=_registry(), tracing=False,
        ))
        try:
            client = ServiceClient(handle.base_url, "alice-key",
                                   timeout=60)
            doc = client.run("sleep_test", {"seconds": 0.01})
            assert "trace_id" not in doc
            with pytest.raises(ServiceApiError) as info:
                client.trace(doc["id"])
            assert info.value.status == 404
        finally:
            handle.stop()
            obs.reset()


# ----------------------------------------------------------------------
# SLO metering
# ----------------------------------------------------------------------

def _broken_runner(params, ctx):   # pragma: no cover - never reached
    return {}, []


class TestSlo:
    def test_outcome_classes(self):
        assert outcome_class(200) == "ok"
        assert outcome_class(202) == "ok"
        assert outcome_class(304) == "ok"
        assert outcome_class(404) == "client_error"
        assert outcome_class(429) == "throttled"
        assert outcome_class(500) == "server_error"
        assert outcome_class(503) == "server_error"

    def test_meter_excludes_throttled_from_availability(self):
        meter = SloMeter()
        meter.observe_request("t", 200, 0.01)
        for _ in range(5):
            meter.observe_request("t", 429, 0.001)
        report = meter.report()["tenants"]["t"]
        assert report["requests"]["throttled"] == 5
        assert report["availability"] == 1.0
        meter.observe_request("t", 500, 0.01)
        report = meter.report()["tenants"]["t"]
        assert report["availability"] == pytest.approx(0.5)

    def test_mixed_traffic_two_tenants(self, tmp_path, monkeypatch):
        """The acceptance scenario: success + 429 + 500 through two
        tenants, then assert quantiles, availability vs objective,
        and the remaining error budget."""
        monkeypatch.setenv("REPRO_STATE_DIR",
                           str(tmp_path / "obs-state"))
        obs.reset()
        registry = TenantRegistry([
            Tenant(name="alice", key="alice-key", rate=1000.0,
                   burst=1000, max_active=4),
            Tenant(name="bob", key="bob-key", rate=0.5, burst=1,
                   max_active=2, slo_availability=0.5),
        ])
        register_job_type(
            "broken_schema_test", "schema blows up in validation",
            {"x": object()}, _broken_runner,
        )
        handle = start_in_thread(ServiceConfig(
            port=0, cache=str(tmp_path / "slo-cache"),
            tenants=registry, max_running=2, max_queued=4,
        ))
        try:
            alice = ServiceClient(handle.base_url, "alice-key",
                                  timeout=60)
            bob = ServiceClient(handle.base_url, "bob-key",
                                timeout=60)
            for index in range(3):
                final = alice.run(
                    "sleep_test", {"seconds": 0.01 + index / 1000})
                assert final["status"] == COMPLETED
            with pytest.raises(ServiceApiError) as info:
                alice.submit("broken_schema_test", {})
            assert info.value.status == 500
            assert bob.run("sleep_test",
                           {"seconds": 0.01})["status"] == COMPLETED
            with pytest.raises(ServiceApiError) as info:
                bob.submit("sleep_test", {"seconds": 0.01})
            assert info.value.status == 429

            report = alice.slo()
            assert report["window_s"] > 0
            a = report["tenants"]["alice"]
            b = report["tenants"]["bob"]

            assert a["requests"]["server_error"] == 1
            assert a["requests"]["ok"] >= 6      # submits + polls
            assert a["objective"]["availability"] == pytest.approx(
                0.99)
            assert 0.0 < a["availability"] < 1.0
            assert a["availability_met"] is False
            # One 500 against a 1% budget over this little traffic:
            # the budget is overspent.
            assert a["error_budget"]["spent"] == 1
            assert a["error_budget"]["remaining_fraction"] < 0.0
            latency = a["latency"]
            assert latency["p50_s"] > 0.0
            assert latency["p50_s"] <= latency["p95_s"] \
                <= latency["p99_s"]
            usage = a["usage"]
            assert usage["jobs_total"] == 3
            assert usage["by_status"] == {"completed": 3}
            assert usage["by_type"] == {"sleep_test": 3}
            assert usage["wall_seconds"] > 0.0

            assert b["requests"]["throttled"] == 1
            assert b["requests"]["server_error"] == 0
            assert b["availability"] == 1.0
            assert b["availability_met"] is True
            assert b["objective"]["availability"] == pytest.approx(
                0.5)
            assert b["error_budget"]["remaining_fraction"] == 1.0
            assert b["usage"]["jobs_total"] == 1
        finally:
            handle.stop()
            service_jobs._JOB_TYPES.pop("broken_schema_test", None)
            obs.reset()

    def test_slo_objectives_parse_from_tenants_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(
            '{"tenants": [{"name": "x", "key": "kx",'
            ' "slo": {"availability": 0.999, "latency_p95_s": 0.25}}]}'
        )
        registry = TenantRegistry.from_file(path)
        tenant = registry.authenticate("kx")
        assert tenant.slo_availability == pytest.approx(0.999)
        assert tenant.slo_latency_p95_s == pytest.approx(0.25)
        meter = SloMeter()
        meter.observe_request("x", 200, 0.01)
        report = meter.report(registry)["tenants"]["x"]
        assert report["objective"]["availability"] == \
            pytest.approx(0.999)
        assert report["objective"]["latency_p95_s"] == \
            pytest.approx(0.25)


# ----------------------------------------------------------------------
# Flight recorder at the service layer
# ----------------------------------------------------------------------

class TestServiceFlight:
    def test_unhandled_500_dumps_the_flight_ring(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STATE_DIR",
                           str(tmp_path / "obs-state"))
        obs.reset()
        register_job_type(
            "broken_schema_test", "schema blows up in validation",
            {"x": object()}, _broken_runner,
        )
        handle = start_in_thread(ServiceConfig(
            port=0, cache=str(tmp_path / "fl-cache"),
            tenants=_registry(),
        ))
        try:
            alice = ServiceClient(handle.base_url, "alice-key",
                                  timeout=60)
            alice.run("sleep_test", {"seconds": 0.01})
            with pytest.raises(ServiceApiError) as info:
                alice.submit("broken_schema_test", {})
            assert info.value.status == 500
            dumps = obs_flight.list_dumps()
            assert dumps, "an unhandled 500 must dump the flight ring"
            document = obs_flight.load_dump()
            assert document["reason"] == "service_500"
            assert document["context"]["path"] == "/v1/jobs"
            assert "AttributeError" in document["context"]["error"]
        finally:
            handle.stop()
            service_jobs._JOB_TYPES.pop("broken_schema_test", None)
            obs.reset()


# ----------------------------------------------------------------------
# /v1/metrics: stock-Prometheus scrapability
# ----------------------------------------------------------------------

class TestMetricsEndpoint:
    def test_process_gauges_always_scrapable(self, handle):
        client = ServiceClient(handle.base_url, "alice-key")
        connection = http.client.HTTPConnection(
            client.host, client.port, timeout=30)
        try:
            connection.request(
                "GET", "/v1/metrics",
                headers={"Authorization": "Bearer alice-key"})
            response = connection.getresponse()
            body = response.read().decode("utf-8")
            assert response.status == 200
            assert response.getheader("Content-Type").startswith(
                "text/plain")
        finally:
            connection.close()
        assert "# TYPE process_uptime_seconds gauge" in body
        assert "# TYPE process_resident_memory_bytes gauge" in body
        assert "# TYPE process_open_fds gauge" in body


# ----------------------------------------------------------------------
# repro top
# ----------------------------------------------------------------------

class TestTopDashboard:
    def test_render_dashboard_frame(self):
        stats = {
            "uptime_s": 125.0, "draining": False,
            "jobs": {"completed": 3, "running": 1},
            "cache": {"entries": 5},
            "max_running": 2, "max_queued": 4,
        }
        slo = {"window_s": 125.0, "tenants": {"alice": {
            "requests": {"total": 10, "ok": 8, "throttled": 1,
                         "client_error": 0, "server_error": 1},
            "latency": {"p50_s": 0.01, "p95_s": 0.05, "p99_s": 0.09,
                        "mean_s": 0.02},
            "availability": 0.8889, "availability_met": False,
            "objective": {"availability": 0.99,
                          "latency_p95_s": 2.0},
            "error_budget": {"allowed": 0.09, "consumed": 1,
                             "remaining_fraction": -1.0},
            "usage": {"jobs_total": 4, "cache_hits": 1,
                      "wall_seconds": 1.25,
                      "by_type": {"sleep_test": 4},
                      "by_status": {"completed": 4}},
        }}}
        frame = render_dashboard(stats, slo)
        assert "repro top" in frame
        assert "up 2.1m" in frame
        assert "completed=3 running=1" in frame
        assert "alice" in frame
        assert "88.89%" in frame
        assert "!" in frame          # availability objective missed
        assert "sleep_test=4" in frame

    def test_render_dashboard_without_traffic(self):
        frame = render_dashboard(
            {"uptime_s": 5.0, "jobs": {}, "cache": {}},
            {"tenants": {}},
        )
        assert "(no tenant traffic yet)" in frame
        assert "jobs: none" in frame

    def test_cli_top_once(self, handle, capsys):
        from repro.cli import main

        client = ServiceClient(handle.base_url, "alice-key",
                               timeout=60)
        client.run("sleep_test", {"seconds": 0.01})
        assert main(["top", "--url", handle.base_url,
                     "--key", "alice-key", "--once"]) == 0
        output = capsys.readouterr().out
        assert "repro top" in output
        assert "alice" in output
