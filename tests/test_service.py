"""End-to-end tests of ``repro.service``: real sockets, real jobs.

Every test starts a full service (asyncio HTTP server on an ephemeral
port, executor-backed job runner, shared result cache in tmp_path) and
talks to it with the bundled clients -- the same path ``repro client``
and the CI smoke job use.
"""

import time

import pytest

from repro.engine import EngineCancelled
from repro.service import (
    CANCELLED,
    COMPLETED,
    Field,
    JobStore,
    ServiceApiError,
    ServiceClient,
    ServiceConfig,
    Tenant,
    TenantRegistry,
    TokenBucket,
    ValidationError,
    register_job_type,
    start_in_thread,
)
from repro.service.artifacts import ArtifactStore
from repro.service.jobs import validate_params
from repro.service.state import JobRecord

KERNEL_PARAMS = {"kernel": "Parity Check", "transactions": 3}


def _sleep_runner(params, ctx):
    """Test-only job: cancellable busy-wait, no engine involved."""
    deadline = time.monotonic() + params["seconds"]
    while time.monotonic() < deadline:
        if ctx.record.cancel_requested:
            raise EngineCancelled("test sleep cancelled")
        time.sleep(0.02)
    return {"slept": params["seconds"]}, []


register_job_type(
    "sleep_test", "test-only cancellable sleeper",
    {"seconds": Field(float, default=0.2, minimum=0.0, maximum=30.0)},
    _sleep_runner,
)


def _registry():
    return TenantRegistry([
        Tenant(name="alice", key="alice-key", rate=1000.0, burst=1000,
               max_active=4),
        Tenant(name="bob", key="bob-key", rate=1000.0, burst=1000,
               max_active=2),
    ])


@pytest.fixture()
def handle(tmp_path):
    instance = start_in_thread(ServiceConfig(
        port=0, cache=str(tmp_path / "svc-cache"), tenants=_registry(),
        max_running=2, max_queued=2,
    ))
    yield instance
    instance.stop()


@pytest.fixture()
def alice(handle):
    return ServiceClient(handle.base_url, "alice-key", timeout=120)


@pytest.fixture()
def bob(handle):
    return ServiceClient(handle.base_url, "bob-key", timeout=120)


class TestRoundTrip:
    def test_two_tenants_yield_and_dse(self, alice, bob):
        """The ISSUE acceptance path: two tenants, a yield study and a
        DSE sweep, events streamed, artifacts fetched."""
        yield_doc = alice.submit("yield_study", {
            "core": "flexicore4", "wafers": 1, "seed": 7,
        })
        dse_doc = bob.submit("dse_sweep", {
            "designs": ["FlexiCore4"], "transactions": 2,
        })

        yield_final = alice.wait(yield_doc["id"], timeout=300)
        dse_final = bob.wait(dse_doc["id"], timeout=300)
        assert yield_final["status"] == COMPLETED
        assert dse_final["status"] == COMPLETED

        summary = yield_final["result"]["summary"]
        assert set(summary) == {"3", "4.5"}
        assert 0.0 <= summary["3"]["full"] <= 1.0
        metrics = dse_final["result"]["designs"]["FlexiCore4"]
        assert metrics["gate_count"] > 0
        assert metrics["kernels"]

        events = list(alice.events(yield_doc["id"]))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "queued"
        assert "started" in kinds
        assert kinds[-1] == "completed"
        assert [event["seq"] for event in events] == \
            list(range(len(events)))
        assert any(kind == "engine_stage" for kind in kinds)

        assert yield_final["artifacts"]
        text = alice.artifact(
            yield_final["artifacts"][0]["digest"]
        ).decode()
        assert "yield study" in text
        assert "flexicore4" in text

    def test_resubmission_is_cache_hit(self, alice):
        first = alice.run("kernel_run", KERNEL_PARAMS)
        assert first["status"] == COMPLETED
        assert first["cache_hit"] is False

        started = time.monotonic()
        second = alice.run("kernel_run", KERNEL_PARAMS)
        elapsed = time.monotonic() - started
        assert second["status"] == COMPLETED
        assert second["cache_hit"] is True
        assert second["result"] == first["result"]
        assert elapsed < 10.0
        # Identical results render identical artifacts -> same digest.
        assert [a["digest"] for a in second["artifacts"]] == \
            [a["digest"] for a in first["artifacts"]]

    def test_cache_is_shared_across_tenants(self, alice, bob):
        alice_doc = alice.run("kernel_run", KERNEL_PARAMS)
        bob_doc = bob.run("kernel_run", KERNEL_PARAMS)
        assert alice_doc["cache_hit"] is False
        assert bob_doc["cache_hit"] is True

    def test_wafer_maps_job(self, alice):
        doc = alice.run("wafer_maps", {
            "core": "flexicore4", "seed": 3, "voltages": [4.5],
        })
        assert doc["status"] == COMPLETED
        assert "4.5" in doc["result"]["voltages"]
        names = [a["name"] for a in doc["artifacts"]]
        assert "figure6.txt" in names
        assert "figure7.txt" in names
        fig6 = next(a for a in doc["artifacts"]
                    if a["name"] == "figure6.txt")
        assert "Figure 6" in alice.artifact(fig6["digest"]).decode()

    def test_conformance_job(self, alice):
        doc = alice.run("conformance", {
            "seed": 0, "budget": 4, "oracles": ["dispatch"],
        })
        assert doc["status"] == COMPLETED
        assert doc["result"]["cases"] > 0
        assert doc["result"]["divergences"] == []
        # Campaigns must execute, never replay: no cache hit even on
        # an identical resubmission.
        again = alice.run("conformance", {
            "seed": 0, "budget": 4, "oracles": ["dispatch"],
        })
        assert again["cache_hit"] is False

    def test_types_and_stats_and_health(self, alice):
        types = alice.types()
        assert {"yield_study", "dse_sweep", "conformance",
                "kernel_run", "wafer_maps"} <= set(types)
        assert types["yield_study"]["params"]["core"]["required"]
        stats = alice.stats()
        assert stats["tenants"] == ["alice", "bob"]
        assert "cache" in stats
        assert alice.health()["ok"] is True


class TestAdmission:
    def test_unknown_key_is_401(self, handle):
        client = ServiceClient(handle.base_url, "wrong-key")
        with pytest.raises(ServiceApiError) as info:
            client.types()
        assert info.value.status == 401

    def test_unknown_type_is_400(self, alice):
        with pytest.raises(ServiceApiError) as info:
            alice.submit("no_such_type", {})
        assert info.value.status == 400
        assert "no_such_type" in info.value.message

    def test_bad_params_are_400(self, alice):
        for params in (
            {"core": "not-a-core"},            # out of choices
            {"core": "flexicore4", "wafers": "two"},  # wrong type
            {"core": "flexicore4", "bogus": 1},       # unknown name
            {},                                       # missing required
            {"core": "flexicore4", "wafers": 0},      # below minimum
        ):
            with pytest.raises(ServiceApiError) as info:
                alice.submit("yield_study", params)
            assert info.value.status == 400

    def test_quota_is_403_and_isolated(self, alice, bob):
        """Bob (max_active=2) hitting his quota must not disturb
        Alice's in-flight jobs."""
        first = bob.submit("sleep_test", {"seconds": 2.0})
        second = bob.submit("sleep_test", {"seconds": 2.0})
        with pytest.raises(ServiceApiError) as info:
            bob.submit("sleep_test", {"seconds": 0.1})
        assert info.value.status == 403
        assert info.value.code == "quota_exceeded"

        # Alice is unaffected: her quota is her own.
        alice_doc = alice.submit("sleep_test", {"seconds": 0.1})
        assert alice.wait(alice_doc["id"], timeout=60)["status"] in (
            COMPLETED, CANCELLED
        )
        bob.cancel(first["id"])
        bob.cancel(second["id"])
        bob.wait(first["id"], timeout=60)
        bob.wait(second["id"], timeout=60)

    def test_rate_limit_is_429_with_retry_after(self, tmp_path):
        registry = TenantRegistry([
            Tenant(name="slow", key="slow-key", rate=0.5, burst=1,
                   max_active=8),
        ])
        handle = start_in_thread(ServiceConfig(
            port=0, cache=str(tmp_path / "rate-cache"),
            tenants=registry, max_running=1, max_queued=8,
        ))
        try:
            client = ServiceClient(handle.base_url, "slow-key")
            first = client.submit("sleep_test", {"seconds": 0.05})
            with pytest.raises(ServiceApiError) as info:
                client.submit("sleep_test", {"seconds": 0.05})
            assert info.value.status == 429
            assert info.value.code == "rate_limited"
            assert info.value.retry_after is not None
            assert info.value.retry_after >= 1
            client.wait(first["id"], timeout=60)
        finally:
            handle.stop()

    def test_backlog_is_429(self, tmp_path):
        handle = start_in_thread(ServiceConfig(
            port=0, cache=str(tmp_path / "bp-cache"),
            tenants=_registry(), max_running=1, max_queued=1,
        ))
        try:
            alice = ServiceClient(handle.base_url, "alice-key")
            bob = ServiceClient(handle.base_url, "bob-key")
            running = alice.submit("sleep_test", {"seconds": 2.0})
            queued = bob.submit("sleep_test", {"seconds": 0.05})
            with pytest.raises(ServiceApiError) as info:
                alice.submit("sleep_test", {"seconds": 0.05})
            assert info.value.status == 429
            assert info.value.code == "backlog_full"
            # The jobs already admitted still complete.
            alice.cancel(running["id"])
            assert bob.wait(queued["id"], timeout=60)["status"] == \
                COMPLETED
        finally:
            handle.stop()

    def test_jobs_are_tenant_scoped(self, alice, bob):
        doc = alice.run("kernel_run", KERNEL_PARAMS)
        with pytest.raises(ServiceApiError) as info:
            bob.status(doc["id"])
        assert info.value.status == 404
        assert any(j["id"] == doc["id"] for j in alice.jobs())
        assert all(j["id"] != doc["id"] for j in bob.jobs())

    def test_unknown_artifact_is_404(self, alice):
        with pytest.raises(ServiceApiError) as info:
            alice.artifact("f" * 64)
        assert info.value.status == 404
        with pytest.raises(ServiceApiError) as info:
            alice.artifact("../../etc/passwd")
        assert info.value.status == 404


class TestCancel:
    def test_cancel_running_job(self, alice):
        doc = alice.submit("sleep_test", {"seconds": 20.0})
        deadline = time.monotonic() + 10
        while alice.status(doc["id"])["status"] != "running":
            assert time.monotonic() < deadline
            time.sleep(0.02)
        started = time.monotonic()
        alice.cancel(doc["id"])
        final = alice.wait(doc["id"], timeout=30)
        assert final["status"] == CANCELLED
        assert time.monotonic() - started < 10
        events = [e["event"] for e in alice.events(doc["id"])]
        assert "cancel_requested" in events
        assert events[-1] == "cancelled"

    def test_cancel_queued_job(self, tmp_path):
        handle = start_in_thread(ServiceConfig(
            port=0, cache=str(tmp_path / "cq-cache"),
            tenants=_registry(), max_running=1, max_queued=2,
        ))
        try:
            alice = ServiceClient(handle.base_url, "alice-key")
            running = alice.submit("sleep_test", {"seconds": 2.0})
            queued = alice.submit("sleep_test", {"seconds": 10.0})
            final = alice.cancel(queued["id"])
            # Depending on timing the executor may already have
            # started it; either way it must reach CANCELLED fast.
            final = alice.wait(queued["id"], timeout=30)
            assert final["status"] == CANCELLED
            alice.cancel(running["id"])
        finally:
            handle.stop()

    def test_failed_job_reports_error(self, alice):
        doc = alice.run("dse_sweep", {"designs": ["NoSuchDesign"],
                                      "transactions": 1})
        assert doc["status"] == "failed"
        assert "NoSuchDesign" in doc["error"]
        assert "result" not in doc


class TestDrain:
    def test_drain_rejects_new_submissions(self, handle, alice):
        doc = alice.submit("sleep_test", {"seconds": 5.0})
        leftovers = handle.service.drain(grace_s=0.2)
        assert leftovers  # the sleeper outlived the grace period
        with pytest.raises(ServiceApiError) as info:
            alice.submit("kernel_run", KERNEL_PARAMS)
        assert info.value.status == 503
        final = alice.wait(doc["id"], timeout=30)
        assert final["status"] == CANCELLED


class TestUnits:
    def test_token_bucket(self):
        bucket = TokenBucket(rate=10.0, burst=2)
        assert bucket.try_acquire() == (True, 0.0)
        assert bucket.try_acquire()[0] is True
        granted, retry = bucket.try_acquire()
        assert granted is False
        assert 0.0 < retry <= 0.1

    def test_registry_rejects_duplicates(self):
        with pytest.raises(ValueError):
            TenantRegistry([
                Tenant(name="a", key="k"),
                Tenant(name="b", key="k"),
            ])
        with pytest.raises(ValueError):
            TenantRegistry([
                Tenant(name="a", key="k1"),
                Tenant(name="a", key="k2"),
            ])

    def test_registry_from_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(
            '{"tenants": [{"name": "x", "key": "kx", "rate": 3,'
            ' "burst": 5, "max_active": 7}]}'
        )
        registry = TenantRegistry.from_file(path)
        tenant = registry.authenticate("kx")
        assert tenant.name == "x"
        assert tenant.max_active == 7
        path.write_text('{"tenants": []}')
        with pytest.raises(ValueError):
            TenantRegistry.from_file(path)

    def test_validate_params(self):
        schema = {
            "n": Field(int, default=2, minimum=1, maximum=4),
            "name": Field(str, required=True),
        }
        assert validate_params(schema, {"name": "x"}) == \
            {"n": 2, "name": "x"}
        for bad in ({"name": "x", "n": 9}, {"name": "x", "n": True},
                    {"n": 1}, {"name": "x", "zzz": 0}, "not-a-dict"):
            with pytest.raises(ValidationError):
                validate_params(schema, bad)

    def test_job_store_evicts_only_terminal(self):
        store = JobStore(max_records=2)
        live = JobRecord("t", "sleep_test", {})
        done = JobRecord("t", "sleep_test", {})
        done.set_status(COMPLETED)
        store.add(done)
        store.add(live)
        extra = JobRecord("t", "sleep_test", {})
        store.add(extra)
        assert store.get(done.id) is None      # evicted (terminal)
        assert store.get(live.id) is live      # kept (still active)
        assert store.active_count("t") == 2

    def test_artifact_store_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "arts")
        descriptor = store.put("a.txt", "hello", "text/plain")
        again = store.put("a.txt", "hello", "text/plain")
        assert descriptor["digest"] == again["digest"]
        meta, data = store.get(descriptor["digest"])
        assert data == b"hello"
        assert meta["name"] == "a.txt"
        with pytest.raises(KeyError):
            store.get("0" * 64)
        with pytest.raises(KeyError):
            store.get("../sneaky")
