"""Property-style equivalence: packed backends vs the interpreted reference.

The compiled and vector backends' only correctness contract is
"bit-identical to the interpreter": same outputs, same per-gate toggle
counts, same fault verdicts, same observability totals.  These tests
check that contract on random programs and random fault sites over the
fabricated cores (FlexiCore4, FlexiCore8) and on random stimulus over
the DSE cores; the vector backend is additionally exercised across its
64-lane word boundary (non-multiple-of-64 lane counts), with zero-fault
lanes, multi-defect die lanes, and per-lane input variation.
"""

import numpy as np
import pytest

from repro import obs
from repro.fab.testing import random_program, sample_fault_sites
from repro.isa import get_isa
from repro.isa.extended import FULL_FEATURES
from repro.netlist.backend import (
    BACKENDS,
    VECTOR_MAX_LANES,
    WORD_LANES,
    CompiledBackend,
    InterpretedBackend,
    VectorBackend,
    configure,
    default_backend,
    make_backend,
    resolve_backend,
)
from repro.netlist.cores import build_core
from repro.netlist.dse_cores import build_extended_core, build_loadstore_core
from repro.netlist.verify import run_cross_check, run_cross_check_batch

FAB_CORES = ("flexicore4", "flexicore8")


@pytest.fixture(scope="module")
def cores():
    return {name: build_core(name) for name in FAB_CORES}


def _random_inputs(rng, bits, count):
    return [int(rng.integers(0, 1 << bits)) for _ in range(count)]


class TestCrossCheckEquivalence:
    """run_cross_check(_batch) through both backends, result for result."""

    @pytest.mark.parametrize("core", FAB_CORES)
    def test_random_program_and_faults_match(self, cores, core):
        netlist = cores[core]
        isa = get_isa(core)
        rng = np.random.default_rng(20220806)
        program = random_program(isa, rng, length=48)
        inputs = _random_inputs(rng, isa.word_bits, 32)
        faults = [None] + sample_fault_sites(netlist, rng, 7)

        reference = [
            run_cross_check(
                netlist, isa, program, inputs=inputs,
                max_instructions=100, fault=fault, backend="interpreted",
            )
            for fault in faults
        ]
        batched = run_cross_check_batch(
            netlist, isa, program, inputs=inputs,
            max_instructions=100, faults=faults, backend="compiled",
        )
        # Dataclass equality covers cycles, mismatch counts, the exact
        # first-mismatch message, and both toggle statistics.
        assert batched == reference
        vectored = run_cross_check_batch(
            netlist, isa, program, inputs=inputs,
            max_instructions=100, faults=faults, backend="vector",
        )
        assert vectored == reference

    def test_fault_free_single_lane_matches(self, cores):
        netlist = cores["flexicore4"]
        isa = get_isa("flexicore4")
        rng = np.random.default_rng(99)
        program = random_program(isa, rng, length=32)
        inputs = _random_inputs(rng, isa.word_bits, 16)
        results = {
            name: run_cross_check(
                netlist, isa, program, inputs=inputs,
                max_instructions=60, backend=name,
            )
            for name in sorted(BACKENDS)
        }
        assert results["compiled"] == results["interpreted"]
        assert results["vector"] == results["interpreted"]

    def test_interpreted_chunks_to_per_fault_runs(self, cores):
        """The single-lane reference still accepts a fault batch."""
        netlist = cores["flexicore4"]
        isa = get_isa("flexicore4")
        rng = np.random.default_rng(4)
        program = random_program(isa, rng, length=24)
        faults = sample_fault_sites(netlist, rng, 3)
        batched = run_cross_check_batch(
            netlist, isa, program, max_instructions=40,
            faults=faults, backend="interpreted",
        )
        assert len(batched) == len(faults)


class TestLaneSemantics:
    """Per-lane state on the compiled backend vs serial reference runs."""

    def test_mixed_fault_lanes_match_serial(self, cores):
        netlist = cores["flexicore4"]
        comb_gate = next(
            g.name for g in netlist.gates if not g.sequential
        )
        flop_gate = next(g.name for g in netlist.gates if g.sequential)
        faults = [None, (comb_gate, 1), (flop_gate, 0), (comb_gate, 1)]

        packed = CompiledBackend(netlist, lanes=len(faults))
        packed.set_fault_lanes(faults)
        serial = []
        for fault in faults:
            sim = InterpretedBackend(netlist)
            sim.set_fault_lanes([fault])
            serial.append(sim)

        rng = np.random.default_rng(11)
        for _ in range(24):
            stimulus = {
                "instr": int(rng.integers(0, 256)),
                "iport": int(rng.integers(0, 16)),
            }
            packed.set_inputs(stimulus)
            packed.step()
            for sim in serial:
                sim.set_inputs(stimulus)
                sim.step()
            for lane, sim in enumerate(serial):
                assert packed.read_bus("pc", lane=lane) == \
                    sim.read_bus("pc")
                assert packed.read_bus("oport", lane=lane) == \
                    sim.read_bus("oport")

        for lane, sim in enumerate(serial):
            assert packed.toggles(lane) == sim.toggles()
            assert packed.toggle_coverage(lane) == sim.toggle_coverage()
        # Duplicate faults in different lanes behave identically.
        assert packed.toggles(3) == packed.toggles(1)

    def test_lane_bounds(self, cores):
        netlist = cores["flexicore4"]
        with pytest.raises(ValueError):
            CompiledBackend(netlist, lanes=WORD_LANES + 1)
        with pytest.raises(ValueError):
            CompiledBackend(netlist, lanes=0)
        with pytest.raises(ValueError):
            InterpretedBackend(netlist, lanes=2)
        sim = CompiledBackend(netlist, lanes=2)
        with pytest.raises(IndexError):
            sim.read_bus("pc", lane=2)
        with pytest.raises(ValueError):
            sim.set_fault_lanes([None, None, None])


class TestVectorLaneSemantics:
    """Vector-specific lane behavior: word-boundary crossing, zero-fault
    lanes, multi-defect die lanes, and per-lane input variation."""

    @pytest.mark.parametrize("core", FAB_CORES)
    def test_boundary_crossing_campaign_matches_compiled(self, cores,
                                                         core):
        """70 lanes (not a multiple of 64, spilling into word 1) with
        zero-fault lanes interleaved, checked against the compiled
        backend (itself proven against the interpreter above)."""
        netlist = cores[core]
        isa = get_isa(core)
        rng = np.random.default_rng(70)
        program = random_program(isa, rng, length=40)
        inputs = _random_inputs(rng, isa.word_bits, 24)
        sites = sample_fault_sites(netlist, rng, 67)
        faults = [None, None] + sites[:33] + [None] + sites[33:]
        assert len(faults) == 70 and len(faults) % WORD_LANES != 0
        compiled = run_cross_check_batch(
            netlist, isa, program, inputs=inputs,
            max_instructions=80, faults=faults, backend="compiled",
        )
        vectored = run_cross_check_batch(
            netlist, isa, program, inputs=inputs,
            max_instructions=80, faults=faults, backend="vector",
        )
        assert vectored == compiled

    def test_multi_defect_die_lanes_match_serial(self, cores):
        """A lane entry that is a *list* of stuck-at pairs behaves like
        one interpreted instance with every fault injected."""
        netlist = cores["flexicore4"]
        rng = np.random.default_rng(17)
        sites = sample_fault_sites(netlist, rng, 6)
        faults = [None, sites[:2], sites[2:5], [sites[5]]]

        packed = VectorBackend(netlist, lanes=len(faults))
        packed.set_fault_lanes(faults)
        serial = []
        for entry in faults:
            sim = InterpretedBackend(netlist)
            sim.set_fault_lanes([entry])
            serial.append(sim)

        drive = np.random.default_rng(23)
        for _ in range(20):
            stimulus = {
                "instr": int(drive.integers(0, 256)),
                "iport": int(drive.integers(0, 16)),
            }
            packed.set_inputs(stimulus)
            packed.step()
            for sim in serial:
                sim.set_inputs(stimulus)
                sim.step()
        for lane, sim in enumerate(serial):
            assert packed.read_bus("pc", lane=lane) == \
                sim.read_bus("pc")
            assert packed.read_bus("oport", lane=lane) == \
                sim.read_bus("oport")
            assert packed.toggles(lane) == sim.toggles()

    def test_per_lane_inputs_match_serial(self, cores):
        """set_input_lanes: each lane sees its own IPORT value, as a
        per-die variation vector, bit-exact vs per-lane references --
        including lanes past the first uint64 word."""
        netlist = cores["flexicore4"]
        lanes = 70
        packed = VectorBackend(netlist, lanes=lanes)
        rng = np.random.default_rng(3)
        iports = rng.integers(0, 16, size=lanes)
        check = [0, 1, 63, 64, 69]  # both sides of the word boundary
        serial = {lane: InterpretedBackend(netlist) for lane in check}
        for _ in range(16):
            instr = int(rng.integers(0, 256))
            packed.set_inputs({"instr": instr})
            packed.set_input_lanes({"iport": iports})
            packed.step()
            for lane, sim in serial.items():
                sim.set_inputs({
                    "instr": instr, "iport": int(iports[lane]),
                })
                sim.step()
        for lane, sim in serial.items():
            assert packed.read_bus("pc", lane=lane) == \
                sim.read_bus("pc")
            assert packed.read_bus("oport", lane=lane) == \
                sim.read_bus("oport")
            assert packed.toggles(lane) == sim.toggles()

    def test_per_lane_input_validation(self, cores):
        sim = VectorBackend(cores["flexicore4"], lanes=4)
        with pytest.raises(ValueError, match="one value per lane"):
            sim.set_input_lanes({"iport": [1, 2]})
        with pytest.raises(ValueError, match="out of range"):
            sim.set_input_lanes({"iport": [0, 1, 2, 16]})
        with pytest.raises(ValueError, match="must be 0 or 1"):
            sim.set_input_lanes({"iport0": [0, 1, 2, 0]})
        with pytest.raises(KeyError):
            sim.set_input_lanes({"no_such_bus": [0, 0, 0, 0]})

    def test_lane_bounds(self, cores):
        netlist = cores["flexicore4"]
        with pytest.raises(ValueError):
            VectorBackend(netlist, lanes=0)
        with pytest.raises(ValueError):
            VectorBackend(netlist, lanes=VECTOR_MAX_LANES + 1)
        sim = VectorBackend(netlist, lanes=66)
        with pytest.raises(IndexError):
            sim.read_bus("pc", lane=66)
        with pytest.raises(ValueError):
            sim.set_fault_lanes([None] * 67)
        # Capacity past one word is real, not just accepted.
        assert sim.read_bus("pc", lane=65) == sim.read_bus("pc", lane=0)


class TestDseCoreEquivalence:
    """The DSE netlists simulate identically on both backends."""

    @pytest.mark.parametrize("builder", [
        pytest.param(
            lambda: build_extended_core(frozenset(FULL_FEATURES)),
            id="extacc-full",
        ),
        pytest.param(lambda: build_loadstore_core("SC"), id="loadstore-sc"),
    ])
    def test_random_stimulus_and_toggles_match(self, builder):
        netlist = builder()
        instr_bits = sum(
            1 for net in netlist.inputs if net.startswith("instr")
        )
        iport_bits = sum(
            1 for net in netlist.inputs if net.startswith("iport")
        )
        reference = make_backend("interpreted", netlist)
        compiled = make_backend("compiled", netlist)
        vectored = make_backend("vector", netlist)
        rng = np.random.default_rng(2022)
        for _ in range(32):
            stimulus = {
                "instr": int(rng.integers(0, 1 << instr_bits)),
                "iport": int(rng.integers(0, 1 << iport_bits)),
            }
            for sim in (reference, compiled, vectored):
                sim.set_inputs(stimulus)
                sim.step()
            for sim in (compiled, vectored):
                assert sim.read_bus("pc") == reference.read_bus("pc")
                assert sim.read_bus("oport") == \
                    reference.read_bus("oport")
        assert compiled.toggles() == reference.toggles()
        assert vectored.toggles() == reference.toggles()

    def test_dse_core_fault_verdicts_match(self):
        netlist = build_extended_core(frozenset(FULL_FEATURES))
        rng = np.random.default_rng(5)
        sites = sample_fault_sites(netlist, rng, 4)

        def outputs_after(backend_name, fault):
            sim = make_backend(backend_name, netlist)
            if fault is not None:
                sim.set_fault_lanes([fault])
            drive = np.random.default_rng(77)
            trace = []
            for _ in range(16):
                sim.set_inputs({
                    "instr": int(drive.integers(0, 256)),
                    "iport": int(drive.integers(0, 16)),
                })
                sim.step()
                trace.append((sim.read_bus("pc"), sim.read_bus("oport")))
            return trace

        for fault in [None] + sites:
            reference = outputs_after("interpreted", fault)
            assert outputs_after("compiled", fault) == reference
            assert outputs_after("vector", fault) == reference


class TestInputValidation:
    """Satellite: strict scalar/bus validation on every backend."""

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_scalar_rejects_out_of_range(self, cores, backend):
        sim = make_backend(backend, cores["flexicore4"])
        with pytest.raises(ValueError, match="must be 0 or 1"):
            sim.set_inputs({"instr0": 2})
        with pytest.raises(ValueError, match="must be 0 or 1"):
            sim.set_inputs({"instr0": -1})
        sim.set_inputs({"instr0": 1})
        assert sim.read_net("instr0") == 1

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_bus_rejects_out_of_range(self, cores, backend):
        sim = make_backend(backend, cores["flexicore4"])
        with pytest.raises(ValueError, match="out of range"):
            sim.set_inputs({"instr": 256})
        with pytest.raises(ValueError, match="out of range"):
            sim.set_inputs({"iport": -1})
        with pytest.raises(KeyError):
            sim.set_inputs({"no_such_bus": 1})

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_read_bus_width_checked(self, cores, backend):
        sim = make_backend(backend, cores["flexicore4"])
        with pytest.raises(KeyError, match="only 7 bits wide"):
            sim.read_bus("pc", width=8)
        with pytest.raises(KeyError, match="no such bus"):
            sim.read_bus("nonexistent")
        assert sim.read_bus("pc", width=4) == sim.read_bus("pc") & 0xF


class TestObservability:
    """Lane-adjusted counters: batched totals equal serial totals."""

    @pytest.fixture(autouse=True)
    def clean_obs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STATE_DIR", str(tmp_path / "state"))
        obs.reset()
        yield
        obs.reset()

    GATE_COUNTERS = (
        "gate_evaluations_total",
        "gate_settle_passes_total",
        "gate_sim_cycles_total",
    )

    def _campaign_totals(self, netlist, isa, program, faults, backend):
        obs.reset()
        obs.configure(metrics=True)
        if backend == "interpreted":
            for fault in faults:
                run_cross_check(
                    netlist, isa, program, max_instructions=30,
                    fault=fault, backend=backend,
                )
        else:
            run_cross_check_batch(
                netlist, isa, program, max_instructions=30,
                faults=faults, backend=backend,
            )
        registry = obs.registry()
        return {
            name: registry.counter(name).total()
            for name in self.GATE_COUNTERS
        }

    def test_batched_totals_equal_serial(self, cores):
        netlist = cores["flexicore4"]
        isa = get_isa("flexicore4")
        rng = np.random.default_rng(8)
        program = random_program(isa, rng, length=16)
        faults = [None] + sample_fault_sites(netlist, rng, 5)
        serial = self._campaign_totals(
            netlist, isa, program, faults, "interpreted"
        )
        batched = self._campaign_totals(
            netlist, isa, program, faults, "compiled"
        )
        assert batched == serial
        vectored = self._campaign_totals(
            netlist, isa, program, faults, "vector"
        )
        assert vectored == serial
        assert serial["gate_evaluations_total"] > 0


class TestRegistry:
    def test_known_backends(self):
        assert set(BACKENDS) == {"interpreted", "compiled", "vector"}
        assert resolve_backend("compiled") is CompiledBackend
        assert resolve_backend("interpreted") is InterpretedBackend
        assert resolve_backend("vector") is VectorBackend
        assert VectorBackend.max_lanes == VECTOR_MAX_LANES
        assert VectorBackend.max_lanes > CompiledBackend.max_lanes

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("verilated")
        with pytest.raises(ValueError, match="unknown backend"):
            configure("verilated")

    def test_configure_default(self, cores):
        assert default_backend() == "compiled"
        try:
            configure("interpreted")
            assert default_backend() == "interpreted"
            assert resolve_backend(None) is InterpretedBackend
            sim = make_backend(None, cores["flexicore4"])
            assert isinstance(sim, InterpretedBackend)
        finally:
            configure()
        assert default_backend() == "compiled"
