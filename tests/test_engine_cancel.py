"""Engine cancellation, cache GC, and graceful signal shutdown."""

import os
import signal
import threading
import time

import pytest

from repro.engine import (
    Engine,
    EngineCancelled,
    Job,
    ResultCache,
    cancel_all_engines,
    job_function,
    live_engines,
    load_last_run,
)
from repro.engine import signals


@job_function("test.cancel_echo", version="1")
def cancel_echo_job(params, seed):
    return params["value"]


@job_function("test.cancel_sleep", version="1")
def cancel_sleep_job(params, seed):
    time.sleep(params.get("delay", 0.1))
    return params.get("value", 0)


class TestCancel:
    def test_cancel_before_run_refuses(self):
        engine = Engine(jobs=1, cache=None)
        assert engine.cancel() is True
        assert engine.cancel() is False  # already flagged
        with pytest.raises(EngineCancelled):
            engine.run([Job(cancel_echo_job, {"value": 1})])
        engine.uncancel()
        assert engine.run([Job(cancel_echo_job, {"value": 1})]) == [1]

    def test_cancel_mid_serial_run(self):
        engine = Engine(jobs=1, cache=None)

        def hook(event, payload):
            if event == "job_done":
                engine.cancel()

        engine.hooks.add(hook)
        jobs = [Job(cancel_echo_job, {"value": i}) for i in range(4)]
        with pytest.raises(EngineCancelled):
            engine.run(jobs)
        # The first job ran; cancellation stopped the rest.
        assert engine.metrics.jobs_completed == 1

    def test_cancel_wakes_parallel_wait(self):
        engine = Engine(jobs=2, cache=None)
        jobs = [Job(cancel_sleep_job, {"delay": 30.0, "value": i})
                for i in range(2)]
        timer = threading.Timer(0.4, engine.cancel)
        timer.start()
        started = time.monotonic()
        try:
            with pytest.raises(EngineCancelled):
                engine.run(jobs)
        finally:
            timer.cancel()
        # The blocked future wait polls the flag; nowhere near 30 s.
        assert time.monotonic() - started < 10.0
        assert not engine.running

    def test_cancelled_run_still_persists_metrics(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = Engine(jobs=1, cache=cache)

        def hook(event, payload):
            if event == "job_done":
                engine.cancel()

        engine.hooks.add(hook)
        jobs = [Job(cancel_echo_job, {"value": i}) for i in range(3)]
        with pytest.raises(EngineCancelled):
            engine.run(jobs, stage="abort-me")
        last = load_last_run(cache.root)
        assert last is not None
        assert last["stages"][-1]["stage"] == "abort-me"

    def test_live_engines_and_cancel_all(self):
        engine = Engine(jobs=1, cache=None)
        seen = {}
        release = threading.Event()

        def hook(event, payload):
            if event == "job_done" and not seen:
                seen["live"] = engine in live_engines()
                release.wait(5)

        engine.hooks.add(hook)
        jobs = [Job(cancel_echo_job, {"value": i}) for i in range(2)]
        errors = []

        def run():
            try:
                engine.run(jobs)
            except EngineCancelled:
                errors.append("cancelled")

        thread = threading.Thread(target=run)
        thread.start()
        deadline = time.monotonic() + 5
        while "live" not in seen and time.monotonic() < deadline:
            time.sleep(0.01)
        assert seen.get("live") is True
        assert cancel_all_engines() == 1
        assert cancel_all_engines() == 0  # nothing newly cancelled
        release.set()
        thread.join(timeout=10)
        assert errors == ["cancelled"]
        assert engine not in live_engines()


class TestCacheGC:
    def _fill(self, cache, count):
        for index in range(count):
            cache.put("test.fn", f"{index:064x}",
                      {"payload": "x" * 100, "index": index})

    def test_stats_reports_cache_bytes(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        self._fill(cache, 3)
        stats = cache.stats()
        assert stats["cache_bytes"] == stats["bytes"] > 0
        assert stats["entries"] == 3

    def test_gc_evicts_lru_first(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        self._fill(cache, 4)
        now = time.time()
        for index in range(4):
            path = cache.root / "test.fn" / f"{index:064x}.pkl"
            os.utime(path, (now - 1000 + index, now - 1000 + index))
        entry_size = (cache.root / "test.fn" / f"{0:064x}.pkl") \
            .stat().st_size
        report = cache.gc(max_bytes=2 * entry_size)
        assert report["evicted_entries"] == 2
        assert report["after_bytes"] <= 2 * entry_size
        # Oldest two (0, 1) went; newest two (2, 3) survive with meta.
        for index, expected in enumerate([False, False, True, True]):
            pkl = cache.root / "test.fn" / f"{index:064x}.pkl"
            meta = cache.root / "test.fn" / f"{index:064x}.json"
            assert pkl.exists() is expected
            assert meta.exists() is expected

    def test_get_hit_refreshes_lru_clock(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        self._fill(cache, 2)
        old = time.time() - 1000
        for index in range(2):
            path = cache.root / "test.fn" / f"{index:064x}.pkl"
            os.utime(path, (old, old))
        hit, _ = cache.get("test.fn", f"{0:064x}")  # touch entry 0
        assert hit
        entry_size = (cache.root / "test.fn" / f"{0:064x}.pkl") \
            .stat().st_size
        cache.gc(max_bytes=entry_size)
        assert (cache.root / "test.fn" / f"{0:064x}.pkl").exists()
        assert not (cache.root / "test.fn" / f"{1:064x}.pkl").exists()

    def test_gc_zero_budget_clears_everything(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        self._fill(cache, 3)
        report = cache.gc(max_bytes=0)
        assert report["evicted_entries"] == 3
        assert report["after_bytes"] == 0
        assert cache.stats()["entries"] == 0

    def test_gc_within_budget_is_noop(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        self._fill(cache, 2)
        before = cache.stats()["cache_bytes"]
        report = cache.gc(max_bytes=before)
        assert report["evicted_entries"] == 0
        assert report["before_bytes"] == report["after_bytes"] == before

    def test_gc_on_missing_root(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        report = cache.gc(max_bytes=100)
        assert report["evicted_entries"] == 0


class TestSignals:
    """SIGUSR1 stands in for SIGINT so pytest itself stays alive."""

    @pytest.fixture(autouse=True)
    def _clean_handlers(self):
        # Other tests (the CLI ones) may have installed the real
        # SIGINT/SIGTERM handlers; start and end from a clean slate.
        signals.uninstall()
        previous = signal.getsignal(signal.SIGUSR1)
        yield
        signals.uninstall()
        signal.signal(signal.SIGUSR1, previous)

    def test_install_is_idempotent_and_reversible(self):
        taken = signals.install((signal.SIGUSR1,))
        assert taken == [signal.SIGUSR1]
        assert signals.installed() == [signal.SIGUSR1]
        assert signals.install((signal.SIGUSR1,)) == [signal.SIGUSR1]
        signals.uninstall()
        assert signals.installed() == []

    def test_first_signal_cancels_running_engine(self):
        engine = Engine(jobs=1, cache=None)
        blocker = threading.Event()

        def hook(event, payload):
            if event == "job_done":
                blocker.wait(10)

        engine.hooks.add(hook)
        outcome = []

        def run():
            try:
                engine.run([Job(cancel_echo_job, {"value": i})
                            for i in range(2)])
                outcome.append("finished")
            except EngineCancelled:
                outcome.append("cancelled")

        signals.install((signal.SIGUSR1,))
        thread = threading.Thread(target=run)
        thread.start()
        deadline = time.monotonic() + 5
        while not engine.running and time.monotonic() < deadline:
            time.sleep(0.01)
        signal.raise_signal(signal.SIGUSR1)
        blocker.set()
        thread.join(timeout=10)
        assert outcome == ["cancelled"]
        # The handler stayed installed (one engine was newly cancelled).
        assert signals.installed() == [signal.SIGUSR1]

    def test_signal_with_no_engine_falls_through(self):
        hits = []
        signal.signal(signal.SIGUSR1, lambda s, f: hits.append(s))
        signals.install((signal.SIGUSR1,))
        signal.raise_signal(signal.SIGUSR1)
        # No engine was running: the handler uninstalled itself and
        # re-raised, landing in the previous (recording) handler.
        assert hits == [signal.SIGUSR1]
        assert signals.installed() == []
