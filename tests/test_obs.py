"""The observability layer: logging, metrics, spans, transport, CLI."""

import io
import json
import threading

import pytest

from repro import obs
from repro.engine import (
    Engine,
    EngineJobError,
    Job,
    job_function,
    load_last_run,
)
from repro.obs import bridge as obs_bridge
from repro.obs import flight as obs_flight
from repro.obs import logging as obs_logging
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs import state as obs_state


@pytest.fixture(autouse=True)
def clean_obs(tmp_path, monkeypatch):
    """Every test gets an isolated state dir and an all-off switchboard."""
    monkeypatch.setenv("REPRO_STATE_DIR", str(tmp_path / "state"))
    obs.reset()
    yield
    obs.reset()


# ----------------------------------------------------------------------
# Module-level job functions (worker processes import them by reference).
# ----------------------------------------------------------------------

@job_function("test.obs_instrumented", version="1")
def obs_instrumented_job(params, seed):
    with obs.span("t.inner", item=params["item"]):
        if obs.active():
            obs.registry().counter("test_obs_jobs_total").inc()
    return params["item"]


@job_function("test.obs_plain", version="1")
def obs_plain_job(params, seed):
    return params["item"] * 2


@job_function("test.obs_doomed", version="1")
def obs_doomed_job(params, seed):
    raise RuntimeError("deliberately broken")


# ----------------------------------------------------------------------
# Logging
# ----------------------------------------------------------------------

class TestLogging:
    def test_default_threshold_hides_info(self):
        stream = io.StringIO()
        obs.configure(log_stream=stream)
        log = obs.get_logger("t")
        log.info("quiet by default")
        log.warning("but warnings show")
        output = stream.getvalue()
        assert "quiet by default" not in output
        assert "but warnings show" in output

    def test_debug_level_opens_the_gate(self):
        stream = io.StringIO()
        obs.configure(log_level="debug", log_stream=stream)
        obs.get_logger("t").debug("fine detail", n=3)
        assert "[t] debug: fine detail n=3" in stream.getvalue()

    def test_quiet_forces_error_threshold(self):
        stream = io.StringIO()
        obs.configure(quiet=True, log_stream=stream)
        log = obs.get_logger("t")
        log.warning("suppressed")
        log.error("still visible")
        output = stream.getvalue()
        assert "suppressed" not in output
        assert "still visible" in output

    def test_info_renders_without_level_prefix(self):
        line = obs_logging.render_human("eng", "info", "stage done",
                                        {"jobs": 2})
        assert line == "[eng] stage done jobs=2"
        warn = obs_logging.render_human("eng", "warning", "careful", {})
        assert warn == "[eng] warning: careful"

    def test_force_bypasses_threshold(self):
        stream = io.StringIO()
        obs.configure(log_stream=stream)   # threshold still warning
        obs.get_logger("t").force("progress line")
        assert "progress line" in stream.getvalue()

    def test_jsonl_sink_and_tail(self, tmp_path):
        stream = io.StringIO()
        obs.configure(log_level="info", log_stream=stream,
                      persist_log=True)
        log = obs.get_logger("t")
        for index in range(5):
            log.info("event", index=index)
        records = obs_logging.tail_log(count=3)
        assert [record["index"] for record in records] == [2, 3, 4]
        assert all(record["event"] == "event" for record in records)
        rendered = obs_logging.render_log_records(records)
        assert "[t] event index=4" in rendered

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            obs_logging.level_number("chatty")


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

class TestMetrics:
    def test_counter_labels_and_total(self):
        counter = obs_metrics.Counter("hits")
        counter.inc(2, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 2
        assert counter.value(kind="b") == 1
        assert counter.total() == 3

    def test_gauge_set_replaces(self):
        gauge = obs_metrics.Gauge("level")
        gauge.set(5)
        gauge.set(3)
        assert gauge.value() == 3

    def test_histogram_buckets_and_overflow(self):
        histogram = obs_metrics.Histogram("lat", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(100.0)       # beyond the last bound
        cell = histogram.snapshot()["values"][0]
        assert cell["counts"] == [1, 1, 1]
        assert cell["count"] == 3
        assert histogram.mean() == pytest.approx(100.55 / 3)

    def test_registry_rejects_kind_change(self):
        registry = obs_metrics.Registry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.histogram("x")

    def test_merge_adds_counters_and_histograms(self):
        a = obs_metrics.Registry()
        a.counter("jobs").inc(2, status="ok")
        a.histogram("secs", buckets=(1.0,)).observe(0.5)
        b = obs_metrics.Registry()
        b.counter("jobs").inc(3, status="ok")
        b.histogram("secs", buckets=(1.0,)).observe(2.0)
        b.gauge("depth").set(7)
        a.merge(b.snapshot())
        assert a.counter("jobs").value(status="ok") == 5
        assert a.histogram("secs").count() == 2
        assert a.gauge("depth").value() == 7

    def test_prometheus_rendering(self):
        registry = obs_metrics.Registry()
        registry.counter("jobs_total", help="Jobs run").inc(4, status="ok")
        registry.histogram("secs", buckets=(0.5, 1.0)).observe(0.7)
        text = obs_metrics.render_prometheus(registry.snapshot())
        assert "# HELP jobs_total Jobs run" in text
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{status="ok"} 4' in text
        assert 'secs_bucket{le="0.5"} 0' in text
        assert 'secs_bucket{le="1.0"} 1' in text
        assert 'secs_bucket{le="+Inf"} 1' in text
        assert "secs_count 1" in text
        assert text.endswith("\n")

    def test_jsonl_rendering_parses(self):
        registry = obs_metrics.Registry()
        registry.counter("jobs").inc(2, where="pool")
        registry.histogram("secs", buckets=(1.0,)).observe(0.2)
        lines = obs_metrics.render_metrics_jsonl(
            registry.snapshot()
        ).splitlines()
        records = [json.loads(line) for line in lines]
        assert {record["metric"] for record in records} == {"jobs", "secs"}
        jobs = next(r for r in records if r["metric"] == "jobs")
        assert jobs["value"] == 2 and jobs["labels"] == {"where": "pool"}

    def test_facade_merge_via_absorb(self):
        obs.configure(metrics=True)
        obs.registry().counter("n").inc()
        obs.absorb({"metrics": {"n": {
            "kind": "counter", "help": "",
            "values": [{"labels": {}, "value": 4}],
        }}})
        assert obs.registry().counter("n").total() == 5


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------

class TestSpans:
    def test_disabled_span_records_nothing(self):
        with obs.span("never", x=1) as handle:
            handle.set(y=2)
        assert obs.collected_spans() == []

    def test_nesting_and_attributes(self):
        obs.configure(trace=True)
        with obs.span("outer"):
            with obs.span("inner", item=3):
                pass
        records = obs.collected_spans()
        assert [record["name"] for record in records] == \
            ["inner", "outer"]           # close order
        inner, outer = records
        assert inner["parent"] == outer["id"]
        assert inner["attrs"] == {"item": 3}
        assert inner["wall_s"] >= 0 and inner["cpu_s"] >= 0

    def test_exception_marks_span(self):
        obs.configure(trace=True)
        with pytest.raises(RuntimeError):
            with obs.span("doomed"):
                raise RuntimeError("boom")
        (record,) = obs.collected_spans()
        assert record["error"] == "RuntimeError"

    def test_render_tree_indents_children(self):
        obs.configure(trace=True)
        with obs.span("parent"):
            with obs.span("child"):
                pass
        tree = obs.render_tree(obs.collected_spans())
        lines = tree.splitlines()
        parent_line = next(l for l in lines if "parent" in l)
        child_line = next(l for l in lines if "child" in l)
        assert lines.index(parent_line) < lines.index(child_line)
        assert child_line.startswith("  ")

    def test_chrome_export_shape(self):
        obs.configure(trace=True)
        with obs.span("work"):
            pass
        document = obs.to_chrome(obs.collected_spans())
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 1
        event = complete[0]
        assert event["name"] == "work"
        assert event["dur"] >= 0 and "ts" in event
        assert any(e["ph"] == "M" for e in events)

    def test_ids_stay_unique_across_reactivations(self):
        # A pool worker is re-activated once per chunk; ids must not
        # restart or the assembled tree aliases spans across chunks.
        obs.configure(trace=True)
        context = obs.trace_context()
        seen = set()
        for _ in range(2):
            obs_spans.activate_worker(context, process="w")
            with obs.span("job"):
                pass
            for record in obs.drain_spans():
                assert record["id"] not in seen
                seen.add(record["id"])


# ----------------------------------------------------------------------
# Cross-process transport through the engine
# ----------------------------------------------------------------------

class TestEngineTransport:
    def test_worker_context_none_when_off(self):
        assert obs.worker_context() is None

    def test_parallel_run_merges_spans_and_metrics(self):
        obs.configure(metrics=True, trace=True)
        jobs = [
            Job(obs_instrumented_job, {"item": index}, label=f"j{index}")
            for index in range(4)
        ]
        with obs.span("test.stage"):
            results = Engine(jobs=2, chunk_size=1).run(jobs, stage="t")
        assert results == [0, 1, 2, 3]
        assert obs.registry().counter("test_obs_jobs_total").total() == 4
        records = obs.collected_spans()
        by_name = {}
        for record in records:
            by_name.setdefault(record["name"], []).append(record)
        assert len(by_name["t.inner"]) == 4
        assert len(by_name["engine.job"]) == 4
        # Worker spans really came from other processes and hang off
        # the pool-side job spans.
        job_ids = {record["id"] for record in by_name["engine.job"]}
        for inner in by_name["t.inner"]:
            assert inner["process"].startswith("worker")
            assert inner["parent"] in job_ids
        # Engine bridge folded scheduling metrics too.
        snapshot = obs.registry().snapshot()
        assert obs._counter_total(snapshot, "engine_jobs_total") == 4
        assert obs._counter_total(snapshot, "engine_stages_total") == 1

    def test_serial_run_records_job_spans(self):
        obs.configure(metrics=True, trace=True)
        jobs = [Job(obs_plain_job, {"item": 2}, label="one")]
        Engine(jobs=1).run(jobs, stage="t")
        names = [record["name"] for record in obs.collected_spans()]
        assert "engine.job" in names and "engine.t" in names

    def test_cache_hits_reach_the_registry(self, tmp_path):
        obs.configure(metrics=True)
        jobs = [
            Job(obs_plain_job, {"item": index}, label=f"j{index}")
            for index in range(3)
        ]
        cache = tmp_path / "cache"
        Engine(jobs=1, cache=cache).run(jobs, stage="t")
        assert obs.registry().counter(
            "engine_cache_misses_total"
        ).total() == 3
        Engine(jobs=1, cache=cache).run(jobs, stage="t")
        assert obs.registry().counter(
            "engine_cache_hits_total"
        ).total() == 3

    def test_last_run_persists_without_cache(self):
        # The satellite regression: `--no-cache` runs must still leave
        # `repro engine stats` fresh via the state directory.
        jobs = [Job(obs_plain_job, {"item": 1}, label="only")]
        Engine(jobs=1).run(jobs, stage="t")
        payload = load_last_run()
        assert payload is not None
        assert payload["jobs_completed"] == 1


# ----------------------------------------------------------------------
# Persistence, exports, CLI
# ----------------------------------------------------------------------

def _collect_some_data():
    obs.configure(metrics=True, trace=True)
    with obs.span("test.root"):
        obs.registry().counter(
            "sim_instructions_total", "Instructions retired",
        ).inc(42, mnemonic="addi")
    return obs.persist_snapshot()


class TestPersistenceAndExport:
    def test_snapshot_round_trip(self):
        _collect_some_data()
        snapshot, spans = obs.load_snapshot()
        assert obs._counter_total(snapshot, "sim_instructions_total") == 42
        assert spans[0]["name"] == "test.root"

    def test_export_reads_persisted_data(self):
        _collect_some_data()
        text = obs.export_text("prometheus")
        assert 'sim_instructions_total{mnemonic="addi"} 42' in text
        document = json.loads(obs.export_text("chrome"))
        assert any(
            event.get("name") == "test.root"
            for event in document["traceEvents"]
        )
        records = [
            json.loads(line)
            for line in obs.export_text("jsonl").splitlines()
        ]
        metrics = {record["metric"] for record in records}
        assert "sim_instructions_total" in metrics
        # Standard process gauges ride along in every persisted
        # snapshot, so stock Prometheus dashboards have them.
        assert "process_uptime_seconds" in metrics

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown export format"):
            obs.export_text("yaml", snapshot={}, spans=[])

    def test_summary_headlines(self):
        obs.configure(metrics=True)
        registry = obs.registry()
        registry.counter("sim_instructions_total").inc(10)
        registry.counter("fab_dies_probed_total").inc(4, voltage="4.5")
        registry.counter("fab_dies_pass_total").inc(3, voltage="4.5")
        registry.counter("fab_die_failures_total").inc(
            1, mode="defect", voltage="4.5"
        )
        registry.counter("engine_cache_hits_total").inc(1)
        registry.counter("engine_cache_misses_total").inc(1)
        text = obs.summary()
        assert "instructions retired: 10" in text
        assert "dies tested:          4 (3 pass, 1 fail defect)" in text
        assert "engine cache:         1/2 hits (50% hit rate)" in text


class TestObsCli:
    def test_summary_without_data_hints(self, capsys):
        from repro.cli import main

        assert main(["obs", "summary"]) == 1
        assert "--profile" in capsys.readouterr().out

    def test_summary_with_data(self, capsys):
        from repro.cli import main

        _collect_some_data()
        obs.reset()     # the CLI must read the persisted copy
        assert main(["obs", "summary"]) == 0
        output = capsys.readouterr().out
        assert "test.root" in output
        assert "instructions retired: 42" in output

    def test_export_formats(self, capsys):
        from repro.cli import main

        _collect_some_data()
        obs.reset()
        assert main(["obs", "export", "--format", "prometheus"]) == 0
        assert "# TYPE sim_instructions_total counter" in \
            capsys.readouterr().out
        assert main(["obs", "export", "--format", "chrome"]) == 0
        json.loads(capsys.readouterr().out)

    def test_tail(self, capsys):
        from repro.cli import main

        obs.configure(log_level="info", persist_log=True)
        obs.get_logger("t").info("hello from the log", run=7)
        assert main(["obs", "tail", "-n", "5"]) == 0
        assert "hello from the log run=7" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Trace context: traceparent parsing and cross-thread binding
# ----------------------------------------------------------------------

class TestTraceContext:
    def test_traceparent_round_trip(self):
        trace_id = obs_spans.new_trace_id()
        header = obs_spans.format_traceparent(trace_id, "abc123")
        parsed = obs_spans.parse_traceparent(header)
        assert parsed is not None
        assert parsed[0] == trace_id
        assert parsed[1] == "abc123".zfill(16)

    @pytest.mark.parametrize("header", [
        None,
        "",
        "not-a-traceparent",
        "00-deadbeef-cafe-01",                       # wrong field widths
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",   # all-zero trace id
        "00-" + "a" * 32 + "-" + "0" * 16 + "-01",   # all-zero parent id
        "zz-" + "a" * 32 + "-" + "1" * 16 + "-01",   # non-hex version
    ])
    def test_traceparent_rejects_malformed(self, header):
        assert obs_spans.parse_traceparent(header) is None

    def test_minted_header_parses(self):
        trace_id = obs_spans.new_trace_id()
        header = obs_spans.format_traceparent(trace_id)
        parsed = obs_spans.parse_traceparent(header)
        assert parsed is not None and parsed[0] == trace_id

    def test_push_pop_trace_scopes_current_trace(self):
        assert obs.current_trace_id() is None
        token = obs_spans.push_trace("feedface" * 4)
        try:
            assert obs.current_trace_id() == "feedface" * 4
        finally:
            obs_spans.pop_trace(token)
        assert obs.current_trace_id() is None

    def test_bound_trace_wins_over_global(self):
        obs.enable_tracing()
        global_id = obs.current_trace_id()
        token = obs_spans.push_trace("ab" * 16)
        try:
            assert obs.current_trace_id() == "ab" * 16
        finally:
            obs_spans.pop_trace(token)
        assert obs.current_trace_id() == global_id

    def test_threads_have_isolated_bindings(self):
        seen = {}

        def worker(name, trace_id):
            token = obs_spans.push_trace(trace_id)
            try:
                seen[name] = obs.current_trace_id()
            finally:
                obs_spans.pop_trace(token)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}", f"{i:032x}"))
            for i in (1, 2, 3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert seen == {"t1": f"{1:032x}", "t2": f"{2:032x}",
                        "t3": f"{3:032x}"}
        assert obs.current_trace_id() is None

    def test_spans_inside_binding_carry_the_trace(self):
        obs.enable_tracing()
        token = obs_spans.push_trace("cd" * 16, "ef" * 8)
        try:
            with obs.span("bound.work"):
                pass
        finally:
            obs_spans.pop_trace(token)
        matching = obs_spans.drain_trace("cd" * 16)
        assert [record["name"] for record in matching] == ["bound.work"]
        # The bound parent id seeds the root span's parent pointer.
        assert matching[0]["parent"] == "ef" * 8

    def test_drain_trace_leaves_other_traces(self):
        obs.enable_tracing()
        token = obs_spans.push_trace("11" * 16)
        try:
            with obs.span("mine"):
                pass
        finally:
            obs_spans.pop_trace(token)
        with obs.span("global.other"):
            pass
        assert [record["name"]
                for record in obs_spans.drain_trace("11" * 16)] == ["mine"]
        remaining = [record["name"]
                     for record in obs_spans.collected_spans()]
        assert "global.other" in remaining and "mine" not in remaining

    def test_log_records_stamp_the_bound_trace(self):
        records = []
        obs_logging.add_log_sink(records.append)
        try:
            token = obs_spans.push_trace("77" * 16)
            try:
                obs.get_logger("t").warning("inside the trace")
            finally:
                obs_spans.pop_trace(token)
            obs.get_logger("t").warning("outside the trace")
        finally:
            obs_logging.remove_log_sink(records.append)
        inside = next(r for r in records
                      if r["event"] == "inside the trace")
        outside = next(r for r in records
                       if r["event"] == "outside the trace")
        assert inside["trace_id"] == "77" * 16
        assert "trace_id" not in outside


# ----------------------------------------------------------------------
# Bridge fan-out: subscribe/unsubscribe under fire
# ----------------------------------------------------------------------

class TestBridgeFanOut:
    def test_all_subscribers_see_every_event(self):
        seen_a, seen_b = [], []
        token_a = obs_bridge.subscribe(
            lambda event, payload: seen_a.append(event))
        token_b = obs_bridge.subscribe(
            lambda event, payload: seen_b.append(event))
        try:
            obs_bridge.engine_event("stage_done", {"stage": "s1"})
            obs_bridge.engine_event("stage_done", {"stage": "s2"})
        finally:
            obs_bridge.unsubscribe(token_a)
            obs_bridge.unsubscribe(token_b)
        assert seen_a == ["stage_done", "stage_done"]
        assert seen_b == ["stage_done", "stage_done"]

    def test_concurrent_publishers_reach_one_subscriber(self):
        lock = threading.Lock()
        count = [0]

        def tally(event, payload):
            with lock:
                count[0] += 1

        token = obs_bridge.subscribe(tally)
        try:
            def publish(worker):
                for index in range(50):
                    obs_bridge.engine_event(
                        "job_done",
                        {"label": f"w{worker}.{index}",
                         "status": "completed", "elapsed_s": 0.0},
                    )

            threads = [threading.Thread(target=publish, args=(i,))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            obs_bridge.unsubscribe(token)
        assert count[0] == 200

    def test_raising_subscriber_dropped_others_survive(self):
        calls = {"bad": 0}
        seen = []

        def bad(event, payload):
            calls["bad"] += 1
            raise RuntimeError("subscriber bug")

        token_bad = obs_bridge.subscribe(bad)
        token_good = obs_bridge.subscribe(
            lambda event, payload: seen.append(event))
        try:
            engine = Engine(jobs=1)
            results = engine.run(
                [Job(obs_plain_job, {"item": 3}, label="fanout")])
            assert results == [6]
            # The engine run completed, the good subscriber kept
            # receiving, and the raising one was dropped after one call.
            assert "job_done" in seen
            assert calls["bad"] == 1
            seen.clear()
            obs_bridge.engine_event("stage_done", {"stage": "again"})
            assert seen == ["stage_done"]
            assert calls["bad"] == 1
        finally:
            obs_bridge.unsubscribe(token_bad)
            obs_bridge.unsubscribe(token_good)

    def test_unsubscribe_during_publish(self):
        seen_b = []
        token_b = None

        def saboteur(event, payload):
            obs_bridge.unsubscribe(token_b)

        token_a = obs_bridge.subscribe(saboteur)
        token_b = obs_bridge.subscribe(
            lambda event, payload: seen_b.append(event))
        try:
            obs_bridge.engine_event("stage_done", {"stage": "first"})
            after_first = list(seen_b)
            obs_bridge.engine_event("stage_done", {"stage": "second"})
        finally:
            obs_bridge.unsubscribe(token_a)
            obs_bridge.unsubscribe(token_b)
        # b may or may not see the event that removed it (snapshot
        # semantics) but must see nothing afterwards.
        assert seen_b == after_first

    def test_self_unsubscribe_during_publish(self):
        seen = []
        token = [None]

        def once(event, payload):
            seen.append(event)
            obs_bridge.unsubscribe(token[0])

        token[0] = obs_bridge.subscribe(once)
        obs_bridge.engine_event("stage_done", {"stage": "one"})
        obs_bridge.engine_event("stage_done", {"stage": "two"})
        assert seen == ["stage_done"]


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------

class TestFlightRecorder:
    def test_enabled_by_default_and_reset_keeps_it_on(self):
        assert obs_flight.enabled()
        obs_flight.record("event", {"event": "x", "payload": {}})
        assert obs_flight.snapshot()
        obs.reset()
        assert obs_flight.snapshot() == []
        assert obs_flight.enabled()

    def test_ring_is_bounded(self):
        obs_flight.configure(capacity=8)
        try:
            for index in range(50):
                obs_flight.record("event", {"index": index})
            records = obs_flight.snapshot()
            assert len(records) == 8
            assert [r["index"] for r in records] == list(range(42, 50))
        finally:
            obs_flight.configure(capacity=obs_flight.DEFAULT_CAPACITY)

    def test_records_engine_events_with_profiling_off(self):
        assert not obs.active()
        engine = Engine(jobs=1)
        engine.run([Job(obs_plain_job, {"item": 2}, label="quiet")])
        kinds = {record["kind"] for record in obs_flight.snapshot()}
        assert "event" in kinds
        events = [record for record in obs_flight.snapshot()
                  if record["kind"] == "event"]
        assert any(record["event"] == "job_done" for record in events)

    def test_disabled_recorder_drops_records(self):
        obs_flight.configure(enabled=False)
        try:
            obs_flight.record("event", {"event": "x"})
            assert obs_flight.snapshot() == []
        finally:
            obs_flight.configure(enabled=True)

    def test_engine_failure_leaves_replayable_dump(self, tmp_path):
        engine = Engine(jobs=1, cache=None, retries=0)
        with pytest.raises(EngineJobError):
            engine.run([Job(obs_doomed_job, {}, label="doomed")])
        dumps = obs_flight.list_dumps()
        assert dumps, "engine failure must write a flight dump"
        document = obs_flight.load_dump()
        assert document["reason"] == "engine_job_failure"
        assert document["context"]["label"] == "doomed"
        assert "deliberately broken" in document["context"]["error"]
        # Replay-readable: the render is self-describing text.
        text = obs_flight.render(document)
        assert "reason=engine_job_failure" in text

    def test_dump_prunes_to_max(self):
        for _ in range(obs_flight.MAX_DUMPS + 3):
            assert obs_flight.dump("test") is not None
        assert len(obs_flight.list_dumps()) == obs_flight.MAX_DUMPS

    def test_dump_failure_is_counted_not_raised(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        before = obs_state.write_error_count()
        assert obs_flight.dump("test", root=blocker) is None
        assert obs_state.write_error_count() == before + 1

    def test_render_snapshot_and_missing(self):
        assert "(no flight dump found)" in obs_flight.render(None)
        obs_flight.record("log", {"logger": "t", "level": "warning",
                                  "event": "hello"})
        text = obs_flight.render(obs_flight.snapshot())
        assert "flight ring: records=1" in text
        assert "[t] warning: hello" in text


class TestFlightCli:
    def test_dump_then_show(self, capsys):
        from repro.cli import main

        obs_flight.record("event",
                          {"event": "job_done",
                           "payload": {"label": "cli-job",
                                       "status": "completed"}})
        assert main(["obs", "flight", "dump"]) == 0
        dump_path = capsys.readouterr().out.strip()
        assert dump_path.endswith(".json")
        assert main(["obs", "flight", "show"]) == 0
        output = capsys.readouterr().out
        assert "reason=cli" in output
        assert "label=cli-job" in output

    def test_show_without_dumps_fails(self, capsys):
        from repro.cli import main

        assert main(["obs", "flight", "show"]) == 1
        assert "no flight dump" in capsys.readouterr().out.lower()


# ----------------------------------------------------------------------
# State-dir write errors: counted, warned once
# ----------------------------------------------------------------------

class TestWriteErrors:
    def test_oserror_counted_and_warned_once(self, tmp_path,
                                             monkeypatch):
        stream = io.StringIO()
        obs.configure(log_stream=stream)
        monkeypatch.setattr(obs_state, "_write_warned", False)
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the state dir should be")
        before_total = obs_state.write_error_count()
        before_named = obs_state.write_error_count("metrics.json")
        assert not obs_state.write_json("metrics.json", {},
                                        root=blocker)
        assert not obs_state.write_jsonl("spans.jsonl", [],
                                         root=blocker)
        assert not obs_state.append_jsonl("log.jsonl", {},
                                          root=blocker)
        assert obs_state.write_error_count() == before_total + 3
        assert (obs_state.write_error_count("metrics.json")
                == before_named + 1)
        # Warn-once: three failures, one warning line.
        output = stream.getvalue()
        assert output.count("state-dir write failed") == 1

    def test_write_errors_fold_into_metrics(self, tmp_path):
        obs.configure(metrics=True)
        blocker = tmp_path / "blocked"
        blocker.write_text("x")
        obs_state.write_json("metrics.json", {}, root=blocker)
        counter = obs.registry().counter("obs_write_errors_total")
        assert counter.value(file="metrics.json") == 1


# ----------------------------------------------------------------------
# Process gauges
# ----------------------------------------------------------------------

class TestProcessGauges:
    def test_gauges_report_live_process(self):
        obs.configure(metrics=True)
        obs.update_process_gauges()
        registry = obs.registry()
        assert registry.gauge("process_uptime_seconds").value() > 0
        assert (registry.gauge("process_resident_memory_bytes").value()
                > 1024 * 1024)
        assert registry.gauge("process_open_fds").value() >= 3

    def test_gauges_ride_along_in_prometheus_export(self):
        obs.configure(metrics=True)
        obs.update_process_gauges()
        text = obs.export_text(
            "prometheus", snapshot=obs.registry().snapshot(), spans=[])
        assert "# TYPE process_uptime_seconds gauge" in text
        assert "process_resident_memory_bytes" in text
        assert "process_open_fds" in text
