"""The observability layer: logging, metrics, spans, transport, CLI."""

import io
import json

import pytest

from repro import obs
from repro.engine import Engine, Job, job_function, load_last_run
from repro.obs import logging as obs_logging
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans


@pytest.fixture(autouse=True)
def clean_obs(tmp_path, monkeypatch):
    """Every test gets an isolated state dir and an all-off switchboard."""
    monkeypatch.setenv("REPRO_STATE_DIR", str(tmp_path / "state"))
    obs.reset()
    yield
    obs.reset()


# ----------------------------------------------------------------------
# Module-level job functions (worker processes import them by reference).
# ----------------------------------------------------------------------

@job_function("test.obs_instrumented", version="1")
def obs_instrumented_job(params, seed):
    with obs.span("t.inner", item=params["item"]):
        if obs.active():
            obs.registry().counter("test_obs_jobs_total").inc()
    return params["item"]


@job_function("test.obs_plain", version="1")
def obs_plain_job(params, seed):
    return params["item"] * 2


# ----------------------------------------------------------------------
# Logging
# ----------------------------------------------------------------------

class TestLogging:
    def test_default_threshold_hides_info(self):
        stream = io.StringIO()
        obs.configure(log_stream=stream)
        log = obs.get_logger("t")
        log.info("quiet by default")
        log.warning("but warnings show")
        output = stream.getvalue()
        assert "quiet by default" not in output
        assert "but warnings show" in output

    def test_debug_level_opens_the_gate(self):
        stream = io.StringIO()
        obs.configure(log_level="debug", log_stream=stream)
        obs.get_logger("t").debug("fine detail", n=3)
        assert "[t] debug: fine detail n=3" in stream.getvalue()

    def test_quiet_forces_error_threshold(self):
        stream = io.StringIO()
        obs.configure(quiet=True, log_stream=stream)
        log = obs.get_logger("t")
        log.warning("suppressed")
        log.error("still visible")
        output = stream.getvalue()
        assert "suppressed" not in output
        assert "still visible" in output

    def test_info_renders_without_level_prefix(self):
        line = obs_logging.render_human("eng", "info", "stage done",
                                        {"jobs": 2})
        assert line == "[eng] stage done jobs=2"
        warn = obs_logging.render_human("eng", "warning", "careful", {})
        assert warn == "[eng] warning: careful"

    def test_force_bypasses_threshold(self):
        stream = io.StringIO()
        obs.configure(log_stream=stream)   # threshold still warning
        obs.get_logger("t").force("progress line")
        assert "progress line" in stream.getvalue()

    def test_jsonl_sink_and_tail(self, tmp_path):
        stream = io.StringIO()
        obs.configure(log_level="info", log_stream=stream,
                      persist_log=True)
        log = obs.get_logger("t")
        for index in range(5):
            log.info("event", index=index)
        records = obs_logging.tail_log(count=3)
        assert [record["index"] for record in records] == [2, 3, 4]
        assert all(record["event"] == "event" for record in records)
        rendered = obs_logging.render_log_records(records)
        assert "[t] event index=4" in rendered

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            obs_logging.level_number("chatty")


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------

class TestMetrics:
    def test_counter_labels_and_total(self):
        counter = obs_metrics.Counter("hits")
        counter.inc(2, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 2
        assert counter.value(kind="b") == 1
        assert counter.total() == 3

    def test_gauge_set_replaces(self):
        gauge = obs_metrics.Gauge("level")
        gauge.set(5)
        gauge.set(3)
        assert gauge.value() == 3

    def test_histogram_buckets_and_overflow(self):
        histogram = obs_metrics.Histogram("lat", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(100.0)       # beyond the last bound
        cell = histogram.snapshot()["values"][0]
        assert cell["counts"] == [1, 1, 1]
        assert cell["count"] == 3
        assert histogram.mean() == pytest.approx(100.55 / 3)

    def test_registry_rejects_kind_change(self):
        registry = obs_metrics.Registry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.histogram("x")

    def test_merge_adds_counters_and_histograms(self):
        a = obs_metrics.Registry()
        a.counter("jobs").inc(2, status="ok")
        a.histogram("secs", buckets=(1.0,)).observe(0.5)
        b = obs_metrics.Registry()
        b.counter("jobs").inc(3, status="ok")
        b.histogram("secs", buckets=(1.0,)).observe(2.0)
        b.gauge("depth").set(7)
        a.merge(b.snapshot())
        assert a.counter("jobs").value(status="ok") == 5
        assert a.histogram("secs").count() == 2
        assert a.gauge("depth").value() == 7

    def test_prometheus_rendering(self):
        registry = obs_metrics.Registry()
        registry.counter("jobs_total", help="Jobs run").inc(4, status="ok")
        registry.histogram("secs", buckets=(0.5, 1.0)).observe(0.7)
        text = obs_metrics.render_prometheus(registry.snapshot())
        assert "# HELP jobs_total Jobs run" in text
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{status="ok"} 4' in text
        assert 'secs_bucket{le="0.5"} 0' in text
        assert 'secs_bucket{le="1.0"} 1' in text
        assert 'secs_bucket{le="+Inf"} 1' in text
        assert "secs_count 1" in text
        assert text.endswith("\n")

    def test_jsonl_rendering_parses(self):
        registry = obs_metrics.Registry()
        registry.counter("jobs").inc(2, where="pool")
        registry.histogram("secs", buckets=(1.0,)).observe(0.2)
        lines = obs_metrics.render_metrics_jsonl(
            registry.snapshot()
        ).splitlines()
        records = [json.loads(line) for line in lines]
        assert {record["metric"] for record in records} == {"jobs", "secs"}
        jobs = next(r for r in records if r["metric"] == "jobs")
        assert jobs["value"] == 2 and jobs["labels"] == {"where": "pool"}

    def test_facade_merge_via_absorb(self):
        obs.configure(metrics=True)
        obs.registry().counter("n").inc()
        obs.absorb({"metrics": {"n": {
            "kind": "counter", "help": "",
            "values": [{"labels": {}, "value": 4}],
        }}})
        assert obs.registry().counter("n").total() == 5


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------

class TestSpans:
    def test_disabled_span_records_nothing(self):
        with obs.span("never", x=1) as handle:
            handle.set(y=2)
        assert obs.collected_spans() == []

    def test_nesting_and_attributes(self):
        obs.configure(trace=True)
        with obs.span("outer"):
            with obs.span("inner", item=3):
                pass
        records = obs.collected_spans()
        assert [record["name"] for record in records] == \
            ["inner", "outer"]           # close order
        inner, outer = records
        assert inner["parent"] == outer["id"]
        assert inner["attrs"] == {"item": 3}
        assert inner["wall_s"] >= 0 and inner["cpu_s"] >= 0

    def test_exception_marks_span(self):
        obs.configure(trace=True)
        with pytest.raises(RuntimeError):
            with obs.span("doomed"):
                raise RuntimeError("boom")
        (record,) = obs.collected_spans()
        assert record["error"] == "RuntimeError"

    def test_render_tree_indents_children(self):
        obs.configure(trace=True)
        with obs.span("parent"):
            with obs.span("child"):
                pass
        tree = obs.render_tree(obs.collected_spans())
        lines = tree.splitlines()
        parent_line = next(l for l in lines if "parent" in l)
        child_line = next(l for l in lines if "child" in l)
        assert lines.index(parent_line) < lines.index(child_line)
        assert child_line.startswith("  ")

    def test_chrome_export_shape(self):
        obs.configure(trace=True)
        with obs.span("work"):
            pass
        document = obs.to_chrome(obs.collected_spans())
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 1
        event = complete[0]
        assert event["name"] == "work"
        assert event["dur"] >= 0 and "ts" in event
        assert any(e["ph"] == "M" for e in events)

    def test_ids_stay_unique_across_reactivations(self):
        # A pool worker is re-activated once per chunk; ids must not
        # restart or the assembled tree aliases spans across chunks.
        obs.configure(trace=True)
        context = obs.trace_context()
        seen = set()
        for _ in range(2):
            obs_spans.activate_worker(context, process="w")
            with obs.span("job"):
                pass
            for record in obs.drain_spans():
                assert record["id"] not in seen
                seen.add(record["id"])


# ----------------------------------------------------------------------
# Cross-process transport through the engine
# ----------------------------------------------------------------------

class TestEngineTransport:
    def test_worker_context_none_when_off(self):
        assert obs.worker_context() is None

    def test_parallel_run_merges_spans_and_metrics(self):
        obs.configure(metrics=True, trace=True)
        jobs = [
            Job(obs_instrumented_job, {"item": index}, label=f"j{index}")
            for index in range(4)
        ]
        with obs.span("test.stage"):
            results = Engine(jobs=2, chunk_size=1).run(jobs, stage="t")
        assert results == [0, 1, 2, 3]
        assert obs.registry().counter("test_obs_jobs_total").total() == 4
        records = obs.collected_spans()
        by_name = {}
        for record in records:
            by_name.setdefault(record["name"], []).append(record)
        assert len(by_name["t.inner"]) == 4
        assert len(by_name["engine.job"]) == 4
        # Worker spans really came from other processes and hang off
        # the pool-side job spans.
        job_ids = {record["id"] for record in by_name["engine.job"]}
        for inner in by_name["t.inner"]:
            assert inner["process"].startswith("worker")
            assert inner["parent"] in job_ids
        # Engine bridge folded scheduling metrics too.
        snapshot = obs.registry().snapshot()
        assert obs._counter_total(snapshot, "engine_jobs_total") == 4
        assert obs._counter_total(snapshot, "engine_stages_total") == 1

    def test_serial_run_records_job_spans(self):
        obs.configure(metrics=True, trace=True)
        jobs = [Job(obs_plain_job, {"item": 2}, label="one")]
        Engine(jobs=1).run(jobs, stage="t")
        names = [record["name"] for record in obs.collected_spans()]
        assert "engine.job" in names and "engine.t" in names

    def test_cache_hits_reach_the_registry(self, tmp_path):
        obs.configure(metrics=True)
        jobs = [
            Job(obs_plain_job, {"item": index}, label=f"j{index}")
            for index in range(3)
        ]
        cache = tmp_path / "cache"
        Engine(jobs=1, cache=cache).run(jobs, stage="t")
        assert obs.registry().counter(
            "engine_cache_misses_total"
        ).total() == 3
        Engine(jobs=1, cache=cache).run(jobs, stage="t")
        assert obs.registry().counter(
            "engine_cache_hits_total"
        ).total() == 3

    def test_last_run_persists_without_cache(self):
        # The satellite regression: `--no-cache` runs must still leave
        # `repro engine stats` fresh via the state directory.
        jobs = [Job(obs_plain_job, {"item": 1}, label="only")]
        Engine(jobs=1).run(jobs, stage="t")
        payload = load_last_run()
        assert payload is not None
        assert payload["jobs_completed"] == 1


# ----------------------------------------------------------------------
# Persistence, exports, CLI
# ----------------------------------------------------------------------

def _collect_some_data():
    obs.configure(metrics=True, trace=True)
    with obs.span("test.root"):
        obs.registry().counter(
            "sim_instructions_total", "Instructions retired",
        ).inc(42, mnemonic="addi")
    return obs.persist_snapshot()


class TestPersistenceAndExport:
    def test_snapshot_round_trip(self):
        _collect_some_data()
        snapshot, spans = obs.load_snapshot()
        assert obs._counter_total(snapshot, "sim_instructions_total") == 42
        assert spans[0]["name"] == "test.root"

    def test_export_reads_persisted_data(self):
        _collect_some_data()
        text = obs.export_text("prometheus")
        assert 'sim_instructions_total{mnemonic="addi"} 42' in text
        document = json.loads(obs.export_text("chrome"))
        assert any(
            event.get("name") == "test.root"
            for event in document["traceEvents"]
        )
        records = [
            json.loads(line)
            for line in obs.export_text("jsonl").splitlines()
        ]
        assert records[0]["metric"] == "sim_instructions_total"

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown export format"):
            obs.export_text("yaml", snapshot={}, spans=[])

    def test_summary_headlines(self):
        obs.configure(metrics=True)
        registry = obs.registry()
        registry.counter("sim_instructions_total").inc(10)
        registry.counter("fab_dies_probed_total").inc(4, voltage="4.5")
        registry.counter("fab_dies_pass_total").inc(3, voltage="4.5")
        registry.counter("fab_die_failures_total").inc(
            1, mode="defect", voltage="4.5"
        )
        registry.counter("engine_cache_hits_total").inc(1)
        registry.counter("engine_cache_misses_total").inc(1)
        text = obs.summary()
        assert "instructions retired: 10" in text
        assert "dies tested:          4 (3 pass, 1 fail defect)" in text
        assert "engine cache:         1/2 hits (50% hit rate)" in text


class TestObsCli:
    def test_summary_without_data_hints(self, capsys):
        from repro.cli import main

        assert main(["obs", "summary"]) == 1
        assert "--profile" in capsys.readouterr().out

    def test_summary_with_data(self, capsys):
        from repro.cli import main

        _collect_some_data()
        obs.reset()     # the CLI must read the persisted copy
        assert main(["obs", "summary"]) == 0
        output = capsys.readouterr().out
        assert "test.root" in output
        assert "instructions retired: 42" in output

    def test_export_formats(self, capsys):
        from repro.cli import main

        _collect_some_data()
        obs.reset()
        assert main(["obs", "export", "--format", "prometheus"]) == 0
        assert "# TYPE sim_instructions_total counter" in \
            capsys.readouterr().out
        assert main(["obs", "export", "--format", "chrome"]) == 0
        json.loads(capsys.readouterr().out)

    def test_tail(self, capsys):
        from repro.cli import main

        obs.configure(log_level="info", persist_log=True)
        obs.get_logger("t").info("hello from the log", run=7)
        assert main(["obs", "tail", "-n", "5"]) == 0
        assert "hello from the log run=7" in capsys.readouterr().out
