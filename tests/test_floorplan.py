"""Floorplan rendering tests (the Figure 4 die overlays)."""

import pytest

from repro.netlist import build_flexicore4, build_flexicore8
from repro.netlist.floorplan import compare, render


class TestRender:
    @pytest.fixture(scope="class")
    def text(self):
        return render(build_flexicore4())

    def test_all_modules_labelled(self, text):
        for module in ("memory", "alu", "pc", "acc", "decoder"):
            assert f" {module} " in text

    def test_memory_gets_the_most_rows(self, text):
        lines = text.splitlines()
        blocks = {}
        current = None
        for line in lines[2:]:
            if line.startswith("+"):
                current = None
                continue
            stripped = line.strip("| ")
            if stripped:
                current = stripped.split()[0]
                blocks.setdefault(current, 0)
            if current:
                blocks[current] += 1
        assert max(blocks, key=blocks.get) == "memory"

    def test_constant_width(self, text):
        widths = {len(line) for line in text.splitlines()[1:]}
        assert len(widths) == 1

    def test_header_carries_area(self, text):
        assert "NAND2-eq" in text.splitlines()[0]


class TestCompare:
    def test_figure4_observation(self):
        """Each chip allocates a different ratio of area to components:
        FlexiCore8 trades memory share for ALU/accumulator share."""
        text = compare([build_flexicore4(), build_flexicore8()])
        lines = {line.split()[0]: line for line in text.splitlines()[1:]}

        def shares(line):
            return [float(tok.rstrip("%"))
                    for tok in line.split()[1:]]

        mem4, mem8 = shares(lines["memory"])
        alu4, alu8 = shares(lines["alu"])
        assert mem4 > mem8
        assert alu8 > alu4

    def test_missing_module_dash(self):
        from repro.netlist.dse_cores import build_extended_core

        text = compare([build_flexicore4(),
                        build_extended_core(("shift",))])
        shifter_line = next(line for line in text.splitlines()
                            if line.startswith("shifter"))
        assert "-" in shifter_line


class TestCli:
    def test_floorplan_command(self, capsys):
        from repro.cli import main

        assert main(["floorplan", "flexicore8"]) == 0
        assert "memory" in capsys.readouterr().out

    def test_floorplan_compare(self, capsys):
        from repro.cli import main

        assert main(["floorplan", "compare"]) == 0
        out = capsys.readouterr().out
        assert "flexicore4" in out and "flexicore8" in out

    def test_floorplan_unknown(self, capsys):
        from repro.cli import main

        assert main(["floorplan", "z80"]) == 2
