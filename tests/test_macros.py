"""Macro library semantics, exhaustively cross-checked on every target.

These are the load-bearing tests of the kernel layer: each virtual
operation is executed through the simulator for every accumulator value
(and operand) on the base ISA, the full extended ISA, FlexiCore4+ and a
minimal-feature target, so one macro expansion bug fails loudly here.
"""

import pytest

from repro.asm import Assembler, MacroError
from repro.asm.macro import MacroLibrary, expand
from repro.asm.parser import parse_source
from repro.isa import get_isa
from repro.kernels.macros import T0, T1, build_library
from repro.sim import run_program

TARGET_NAMES = ("flexicore4", "extacc", "flexicore4plus", "extacc[base]",
                "extacc[subr]")


@pytest.fixture(params=TARGET_NAMES)
def target(request):
    isa = get_isa(request.param)
    return isa, build_library(isa)


def run(target, source, inputs=None):
    isa, library = target
    program = Assembler(isa, library).assemble(source)
    result, sink = run_program(program, inputs=inputs, max_cycles=100_000)
    return sink.values


def emit_and_capture(target, setup_lines):
    source = "\n".join(setup_lines + ["    store 1", "    %halt",
                                      "    %emit_pool"])
    return run(target, source)[0]


class TestConstantsAndArithmetic:
    @pytest.mark.parametrize("value", range(16))
    def test_ldi(self, target, value):
        assert emit_and_capture(target, [f"    %ldi {value}"]) == value

    @pytest.mark.parametrize("value", range(16))
    def test_not(self, target, value):
        got = emit_and_capture(
            target, [f"    %ldi {value}", "    %not"]
        )
        assert got == (~value) & 0xF

    @pytest.mark.parametrize("value", range(16))
    def test_negate(self, target, value):
        got = emit_and_capture(
            target, [f"    %ldi {value}", "    %negate"]
        )
        assert got == (-value) & 0xF

    @pytest.mark.parametrize("acc,sub", [(a, s) for a in (0, 1, 7, 8, 15)
                                         for s in (0, 1, 8, 15)])
    def test_subi(self, target, acc, sub):
        got = emit_and_capture(
            target, [f"    %ldi {acc}", f"    %subi {sub}"]
        )
        assert got == (acc - sub) & 0xF

    @pytest.mark.parametrize("acc,mem", [(a, m) for a in (0, 3, 8, 15)
                                         for m in (0, 5, 8, 15)])
    def test_sub_m(self, target, acc, mem):
        got = emit_and_capture(target, [
            f"    %ldi {mem}", "    store 2",
            f"    %ldi {acc}", "    %sub_m 2",
        ])
        assert got == (acc - mem) & 0xF

    def test_inc_dec(self, target):
        source = """
    %ldi 14
    store 2
    %inc 2
    load 2
    store 1
    %dec 2
    %dec 2
    load 2
    store 1
    %halt
"""
        assert run(target, source) == [15, 13]


class TestShifts:
    @pytest.mark.parametrize("value", range(16))
    def test_lsr1(self, target, value):
        got = emit_and_capture(
            target, [f"    %ldi {value}", "    %lsr1"]
        )
        assert got == value >> 1

    @pytest.mark.parametrize("value", range(16))
    def test_asr1(self, target, value):
        got = emit_and_capture(
            target, [f"    %ldi {value}", "    %asr1"]
        )
        signed = value - 16 if value & 8 else value
        assert got == (signed >> 1) & 0xF

    @pytest.mark.parametrize("amount", [0, 1, 2, 3])
    def test_lsr_n(self, target, amount):
        got = emit_and_capture(
            target, ["    %ldi 13", f"    %lsr {amount}"]
        )
        assert got == 13 >> amount

    def test_lsl1(self, target):
        got = emit_and_capture(target, ["    %ldi 9", "    %lsl1"])
        assert got == (9 << 1) & 0xF

    def test_lsr_rejects_bad_amount(self, target):
        isa, library = target
        with pytest.raises(MacroError):
            Assembler(isa, library).assemble("%lsr 4\n%halt\n%emit_pool")


class TestBranches:
    def _branch_result(self, target, setup, macro_line):
        source = "\n".join(setup + [
            f"    {macro_line}",
            "    %ldi 0",
            "    store 1",
            "    %halt",
            "yes:",
            "    %ldi 1",
            "    store 1",
            "    %halt",
            "    %emit_pool",
        ])
        return run(target, source)[0]

    @pytest.mark.parametrize("value", range(16))
    def test_brz(self, target, value):
        got = self._branch_result(
            target, [f"    %ldi {value}"], "%brz yes"
        )
        assert got == (1 if value == 0 else 0)

    @pytest.mark.parametrize("value", range(16))
    def test_brnz(self, target, value):
        got = self._branch_result(
            target, [f"    %ldi {value}"], "%brnz yes"
        )
        assert got == (1 if value != 0 else 0)

    @pytest.mark.parametrize("value,threshold",
                             [(v, t) for v in range(16)
                              for t in (0, 1, 5, 8, 9, 15)])
    def test_bltu_i(self, target, value, threshold):
        got = self._branch_result(
            target, [f"    %ldi {value}"], f"%bltu_i {threshold}, yes"
        )
        assert got == (1 if value < threshold else 0)

    @pytest.mark.parametrize("value,threshold",
                             [(v, t) for v in range(16)
                              for t in (0, 1, 8, 11, 15)])
    def test_bgeu_i(self, target, value, threshold):
        got = self._branch_result(
            target, [f"    %ldi {value}"], f"%bgeu_i {threshold}, yes"
        )
        assert got == (1 if value >= threshold else 0)

    @pytest.mark.parametrize("value,mem",
                             [(v, m) for v in (0, 2, 7, 8, 9, 15)
                              for m in (0, 2, 7, 8, 9, 15)])
    def test_bltu_m_and_bgeu_m(self, target, value, mem):
        setup = [f"    %ldi {mem}", "    store 2", f"    %ldi {value}"]
        got = self._branch_result(target, setup, "%bltu_m 2, yes")
        assert got == (1 if value < mem else 0)
        got = self._branch_result(target, setup, "%bgeu_m 2, yes")
        assert got == (1 if value >= mem else 0)

    @pytest.mark.parametrize("value", range(16))
    def test_jump_keep_preserves_accumulator(self, target, value):
        """Listing 2: the unconditional branch that costs 3-4
        instructions but keeps the accumulator intact on both paths."""
        source = f"""
    %ldi {value}
    %jump_keep over
    %ldi 9
    store 1
    %halt
    %landing over
    store 1
    %halt
"""
        assert run(target, source) == [value]

    def test_jump(self, target):
        source = """
    %jump over
    %ldi 9
    store 1
    %halt
over:
    %ldi 4
    store 1
    %halt
"""
        assert run(target, source) == [4]


class TestMultiPrecision:
    @pytest.mark.parametrize("lo,hi,addend", [
        (0, 0, 0), (15, 0, 1), (15, 15, 15), (8, 3, 9), (7, 2, 8),
    ])
    def test_add2w(self, target, lo, hi, addend):
        source = f"""
    %ldi {lo}
    store 2
    %ldi {hi}
    store 3
    %ldi {addend}
    store 4
    %add2w 2, 3, 4
    load 2
    store 1
    load 3
    store 1
    %halt
    %emit_pool
"""
        total = (hi << 4 | lo) + addend
        assert run(target, source) == [total & 0xF, (total >> 4) & 0xF]


class TestSaturatingOps:
    @pytest.mark.parametrize("a,b", [(a, b) for a in range(-8, 8, 3)
                                     for b in range(-8, 8, 3)])
    def test_satadd_satsub(self, target, a, b):
        def sat(x):
            return max(-8, min(7, x))

        source = f"""
    %ldi {b & 0xF}
    store 2
    %ldi {a & 0xF}
    %satadd_m 2
    store 1
    %ldi {a & 0xF}
    %satsub_m 2
    store 1
    %halt
    %emit_pool
"""
        assert run(target, source) == [sat(a + b) & 0xF, sat(a - b) & 0xF]


class TestSubroutinePool:
    def test_pool_shares_one_body(self):
        isa = get_isa("extacc[subr]")
        library = build_library(isa)
        source = """
    %ldi 12
    %lsr1
    %lsr1
    store 1
    %halt
    %emit_pool
"""
        program = Assembler(isa, library).assemble(source)
        # Two %lsr1 calls share one pooled body: far fewer instructions
        # than two inline ~30-instruction expansions.
        assert program.static_instructions < 60
        result, sink = run_program(program)
        assert sink.values == [3]

    def test_missing_emit_pool_fails_loudly(self):
        isa = get_isa("extacc[subr]")
        library = build_library(isa)
        with pytest.raises(Exception):
            Assembler(isa, library).assemble("%lsr1\n%halt\n")


class TestMacroMachinery:
    def test_unknown_macro(self):
        isa = get_isa("flexicore4")
        with pytest.raises(MacroError):
            Assembler(isa, build_library(isa)).assemble("%warp 1\n")

    def test_parent_library_lookup(self):
        parent = MacroLibrary("parent")
        parent.define("one", lambda ctx: ["addi 1"])
        child = MacroLibrary("child", parent=parent)
        assert "one" in child
        assert child.lookup("one") is not None
        assert "one" in child.names()

    def test_recursion_guard(self):
        isa = get_isa("flexicore4")
        library = MacroLibrary("loop")
        library.define("rec", lambda ctx: ["%rec"])
        statements = parse_source("%rec\n")
        from repro.asm.macro import ExpansionContext

        with pytest.raises(MacroError):
            expand(statements, library, ExpansionContext(isa))

    def test_farjump_rejects_sentinel_page(self):
        isa = get_isa("flexicore4")
        library = build_library(isa)
        with pytest.raises(MacroError):
            Assembler(isa, library).assemble(
                "t: %farjump 10, t\n"
            )
