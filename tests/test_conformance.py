"""The differential conformance harness: oracles, shrinking, corpus.

The expensive guarantee ("budget-200 campaign finds nothing") lives in
CI; here each oracle runs a handful of seeded cases, the shrinker is
exercised on synthetic predicates, and a deliberately corrupted
predecode table proves the whole find -> shrink -> persist -> replay
loop catches a real divergence and reduces it to a tiny reproducer.
"""

import json

import pytest

from repro import conformance
from repro.conformance import corpus as corpus_store
from repro.conformance.case import (
    ConformanceCase,
    Divergence,
    compare_observations,
    first_difference,
)
from repro.conformance.generators import (
    materialize_source,
    random_flat_payload,
    random_paged_payload,
)
from repro.conformance.shrink import ddmin_list, shrink_case
from repro.engine import Engine, spawn_seeds
from repro.isa import get_isa
from repro.kernels.kernel import Target


@pytest.fixture(autouse=True)
def conform_state(tmp_path, monkeypatch):
    """Point the corpus at a scratch state dir for every test."""
    monkeypatch.setenv("REPRO_STATE_DIR", str(tmp_path / "state"))
    yield tmp_path / "state"


def run_slice(oracle_name, target, count, seed=2022):
    oracle = conformance.get_oracle(oracle_name)
    divergences = []
    for child in spawn_seeds(seed, count):
        case, div = conformance.run_case(oracle, target, child)
        if div is not None:
            divergences.append((case, div))
    return divergences


# ----------------------------------------------------------------------
# Case plumbing
# ----------------------------------------------------------------------

class TestCase_:
    def test_roundtrip_and_digest_stability(self):
        case = ConformanceCase(
            oracle="dispatch", target="flexicore4", seed=[1, [0]],
            payload={"shape": "flat", "instructions": [], "inputs": [3]},
        )
        again = ConformanceCase.from_dict(case.to_dict())
        assert again == case
        assert again.digest() == case.digest()
        # The digest identifies the payload, not the seed that found it.
        reseeded = ConformanceCase(
            oracle="dispatch", target="flexicore4", seed=[9, [4]],
            payload=case.payload,
        )
        assert reseeded.digest() == case.digest()

    def test_first_difference_paths(self):
        lhs = {"a": [1, {"b": 2}], "c": "x"}
        assert first_difference(lhs, {"a": [1, {"b": 2}], "c": "x"}) is None
        path, left, right = first_difference(
            lhs, {"a": [1, {"b": 3}], "c": "x"}
        )
        assert path == "a[1].b" and (left, right) == (2, 3)
        assert first_difference([1, 2], [1, 2, 3]) is not None

    def test_bool_int_not_conflated(self):
        assert first_difference(True, 1) is not None
        assert first_difference(1, 1.0) is None

    def test_compare_observations_names_both_sides(self):
        case = ConformanceCase("dispatch", "flexicore4", [0, []], {})
        div = compare_observations(
            case, {"reference": {"acc": 1}, "predecode": {"acc": 2}}
        )
        assert div is not None
        assert "reference" in div.detail and "predecode" in div.detail
        assert compare_observations(
            case, {"a": {"acc": 1}, "b": {"acc": 1}}
        ) is None


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------

class TestGenerators:
    @pytest.mark.parametrize("target", conformance.ALL_TARGETS)
    def test_flat_payloads_assemble(self, target):
        isa = get_isa(target)
        for child in spawn_seeds(7, 10):
            payload = random_flat_payload(isa, child.rng())
            program = Target.named(target).assemble(
                materialize_source(payload)
            )
            assert len(program.image()) <= 128

    @pytest.mark.parametrize("target", conformance.ALL_TARGETS)
    def test_paged_payloads_assemble(self, target):
        isa = get_isa(target)
        for child in spawn_seeds(11, 6):
            payload = random_paged_payload(isa, child.rng())
            program = Target.named(target).assemble(
                materialize_source(payload)
            )
            assert len(program.pages) == len(payload["pages"])

    def test_any_sublist_still_assembles(self):
        # The shrinker's soundness requirement: dropping instructions
        # never produces an unassemblable program.
        isa = get_isa("flexicore4")
        payload = random_flat_payload(isa, spawn_seeds(3, 1)[0].rng())
        instructions = payload["instructions"]
        for keep in range(len(instructions)):
            partial = dict(payload, instructions=instructions[:keep])
            Target.named("flexicore4").assemble(
                materialize_source(partial)
            )


# ----------------------------------------------------------------------
# Oracle smokes: a few seeded cases per redundant pair must agree.
# ----------------------------------------------------------------------

class TestOracleSmoke:
    @pytest.mark.parametrize("target", conformance.ALL_TARGETS)
    def test_dispatch_agrees(self, target):
        assert run_slice("dispatch", target, 6) == []

    @pytest.mark.parametrize("target", conformance.ALL_TARGETS)
    def test_asm_roundtrip_agrees(self, target):
        assert run_slice("asm", target, 6) == []

    @pytest.mark.parametrize("target", conformance.ALL_TARGETS)
    def test_fab_scalar_mirror_agrees(self, target):
        assert run_slice("fab", target, 3) == []

    def test_backend_lanes_agree(self):
        assert run_slice("backend", "flexicore4", 2) == []

    def test_vector_lanes_agree(self):
        # Seeded so at least one case draws a 60..96-site campaign,
        # crossing the vector backend's 64-lane word boundary.
        assert run_slice("vector", "flexicore4", 3) == []

    def test_cache_roundtrip_agrees(self):
        assert run_slice("cache", "flexicore8", 1) == []


# ----------------------------------------------------------------------
# Planning and shrinking
# ----------------------------------------------------------------------

class TestPlanning:
    def test_budget_scales_with_cost(self):
        plan = dict(
            ((oracle, target), count)
            for oracle, target, count in conformance.plan_campaign(80)
        )
        dispatch = sum(c for (o, _), c in plan.items() if o == "dispatch")
        backend = sum(c for (o, _), c in plan.items() if o == "backend")
        assert dispatch == 80 and backend == 10

    def test_oracle_and_target_filters(self):
        plan = conformance.plan_campaign(
            10, oracle_names=["asm"], targets=["flexicore8"]
        )
        assert plan == [("asm", "flexicore8", 10)]

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ValueError):
            conformance.plan_campaign(10, oracle_names=["nope"])


class TestShrink:
    def test_ddmin_isolates_culprit_pair(self):
        items = list(range(40))

        def fails(candidate):
            return 7 in candidate and 31 in candidate

        budget = [500]
        result = ddmin_list(items, fails, 0, budget)
        assert sorted(result) == [7, 31]

    def test_ddmin_respects_budget(self):
        items = list(range(64))
        budget = [3]
        result = ddmin_list(items, lambda c: 5 in c, 0, budget)
        assert 5 in result and budget[0] == 0

    def test_shrink_case_reduces_all_fields(self):
        case = ConformanceCase(
            oracle="dispatch", target="flexicore4", seed=[0, []],
            payload={
                "instructions": [{"mnemonic": "addi", "operands": [i % 4]}
                                 for i in range(20)],
                "inputs": [1, 2, 3, 4],
            },
        )

        def evaluate(_oracle, candidate):
            instrs = candidate.payload.get("instructions", [])
            if any(i["operands"] == [3] for i in instrs):
                return Divergence("dispatch", "flexicore4", "x", "boom")
            return None

        payload, report = shrink_case(None, case, evaluate)
        assert len(payload["instructions"]) == 1
        assert payload["inputs"] == []
        assert report["shrunk_size"] == 1
        assert report["executions"] <= 256


# ----------------------------------------------------------------------
# Corpus persistence
# ----------------------------------------------------------------------

class TestCorpus:
    def entry(self):
        case = ConformanceCase(
            oracle="asm", target="flexicore4", seed=[5, [1]],
            payload={"shape": "flat", "instructions": [], "inputs": []},
        )
        div = Divergence("asm", "flexicore4", "image", "aa vs bb")
        return corpus_store.make_entry(
            case, div, shrink_report={"executions": 3}
        )

    def test_save_list_load_clear(self):
        path = corpus_store.save_entry(self.entry())
        assert path.exists()
        entries = corpus_store.list_entries()
        assert len(entries) == 1
        assert entries[0]["divergence"]["field"] == "image"
        by_id = corpus_store.load_entry(entries[0]["id"])
        assert by_id["case"] == entries[0]["case"]
        by_path = corpus_store.load_entry(str(path))
        assert by_path["id"] == by_id["id"]
        assert corpus_store.clear() == 1
        assert corpus_store.list_entries() == []

    def test_load_entry_missing_raises(self):
        with pytest.raises(FileNotFoundError):
            corpus_store.load_entry("deadbeef")

    def test_entries_are_valid_json_documents(self):
        path = corpus_store.save_entry(self.entry())
        with open(path) as handle:
            document = json.load(handle)
        assert set(document) >= {"id", "case", "divergence", "shrink"}


# ----------------------------------------------------------------------
# The seeded divergence: a corrupted predecode table must be found,
# shrunk to a tiny program, persisted, and replayable.
# ----------------------------------------------------------------------

def _corrupting_predecode(real):
    """A predecode_image that sabotages every plain ALU semantic."""
    def make_bad(fn):
        def bad(state, ops, _fn=fn):
            _fn(state, ops)
            state.set_acc(0)
        return bad

    def corrupt(isa, image):
        program = real(isa, image)
        for table in program.pages:
            for offset in range(len(table.fns)):
                decoded = table.decoded[offset]
                if decoded is None or table.branches[offset] \
                        or table.specials[offset]:
                    continue
                if getattr(table.fns[offset], "__name__", "") == "bad":
                    continue
                table.fns[offset] = make_bad(table.fns[offset])
        return program
    return corrupt


class TestSeededDivergence:
    @pytest.fixture
    def broken_dispatch(self, monkeypatch):
        import repro.sim.dispatch as dispatch
        import repro.sim.predecode as predecode

        predecode.clear_cache()
        monkeypatch.setattr(
            dispatch, "predecode_image",
            _corrupting_predecode(predecode.predecode_image),
        )
        yield
        predecode.clear_cache()

    def find_divergent_case(self):
        oracle = conformance.get_oracle("dispatch")
        for child in spawn_seeds(99, 40):
            case, div = conformance.run_case(oracle, "flexicore4", child)
            if div is not None:
                return oracle, case, div
        pytest.fail("corrupted dispatch produced no divergence")

    def test_caught_shrunk_and_replayable(self, broken_dispatch):
        import repro.sim.predecode as predecode

        oracle, case, div = self.find_divergent_case()
        payload, report = conformance.shrink_case(
            oracle, case, conformance.evaluate_case
        )
        assert report["shrunk_instructions"] <= 8
        shrunk = case.with_payload(payload)
        final = conformance.evaluate_case(oracle, shrunk)
        assert final is not None

        entry = corpus_store.make_entry(shrunk, final, report)
        path = corpus_store.save_entry(entry)
        loaded = corpus_store.load_entry(entry["id"])
        assert loaded["_path"] == str(path)

        # Replaying the persisted case reproduces the divergence while
        # the bug is live...
        assert conformance.replay_entry(loaded) is not None
        # ...and passes once the dispatch table is repaired.
        import repro.sim.dispatch as dispatch

        corrupted = dispatch.predecode_image
        dispatch.predecode_image = predecode.predecode_image
        predecode.clear_cache()
        try:
            assert conformance.replay_entry(loaded) is None
        finally:
            dispatch.predecode_image = corrupted
            predecode.clear_cache()

    def test_campaign_surfaces_and_persists_failures(
            self, broken_dispatch):
        summary = conformance.run_campaign(
            1, 12, oracle_names=["dispatch"], targets=["flexicore4"],
            engine=Engine(jobs=1, cache=None),
        )
        assert summary["divergences"]
        entry = summary["divergences"][0]
        assert entry["shrink"]["shrunk_instructions"] <= 8
        assert corpus_store.list_entries()


# ----------------------------------------------------------------------
# Campaign + CLI
# ----------------------------------------------------------------------

class TestCampaignAndCli:
    def test_clean_campaign_reports_zero(self):
        summary = conformance.run_campaign(
            0, 8, oracle_names=["asm", "dispatch"],
            engine=Engine(jobs=1, cache=None),
        )
        assert summary["divergences"] == []
        assert summary["cases"] >= 6
        assert len(summary["slices"]) == 6

    def test_cli_run_exits_zero_when_clean(self, capsys):
        from repro.cli import main

        status = main(["conform", "run", "--seed", "3", "--budget", "6",
                       "--oracles", "asm",
                       "--targets", "flexicore4"])
        out = capsys.readouterr().out
        assert status == 0
        assert "no divergences" in out

    def test_cli_corpus_and_replay(self, capsys):
        from repro.cli import main

        status = main(["conform", "corpus"])
        assert status == 0
        assert "empty" in capsys.readouterr().out

        case = ConformanceCase(
            oracle="asm", target="flexicore4", seed=[5, [1]],
            payload={"shape": "flat",
                     "instructions": [
                         {"mnemonic": "addi", "operands": [1]}],
                     "inputs": []},
        )
        div = Divergence("asm", "flexicore4", "image", "synthetic")
        corpus_store.save_entry(corpus_store.make_entry(case, div))

        status = main(["conform", "corpus"])
        assert status == 0
        assert "asm" in capsys.readouterr().out

        # The stored case is healthy, so replay reports no divergence.
        status = main(["conform", "replay", case.digest()])
        assert status == 0
        assert "no longer reproduces" in capsys.readouterr().out

        status = main(["conform", "corpus", "--clear"])
        assert status == 0
        assert "removed 1" in capsys.readouterr().out

    def test_cli_replay_unknown_entry(self, capsys):
        from repro.cli import main

        assert main(["conform", "replay", "cafebabe"]) == 2
