"""Test-vector methodology (Section 4.1): coverage and fault detection."""

import numpy as np
import pytest

from repro.fab.testing import (
    directed_program,
    fault_chunk_size,
    fault_injection_study,
    random_program,
    toggle_coverage_study,
)
from repro.isa import get_isa
from repro.netlist import build_flexicore4, build_flexicore8


@pytest.fixture(scope="module")
def fc4():
    return build_flexicore4()


class TestDirectedProgram:
    @pytest.mark.parametrize("isa_name", ["flexicore4", "flexicore8"])
    def test_fits_one_page(self, isa_name):
        program = directed_program(get_isa(isa_name))
        assert program.size_bytes <= 128

    def test_touches_every_mnemonic_class(self):
        program = directed_program(get_isa("flexicore4"))
        histogram = program.mnemonic_histogram()
        for mnemonic in ("load", "store", "add", "nand", "xor",
                         "addi", "nandi", "xori", "brn"):
            assert histogram.get(mnemonic, 0) > 0, mnemonic

    def test_stores_to_output_port(self):
        program = directed_program(get_isa("flexicore4"))
        observing = [entry for entry in program.listing
                     if entry.mnemonic == "store"
                     and entry.operands == (1,)]
        assert len(observing) > 10  # results propagate to the pins


class TestRandomProgram:
    def test_assembles_and_decodes(self):
        isa = get_isa("flexicore4")
        rng = np.random.default_rng(0)
        program = random_program(isa, rng, length=64)
        assert program.static_instructions == 64

    def test_branch_targets_in_range(self):
        isa = get_isa("flexicore4")
        rng = np.random.default_rng(1)
        program = random_program(isa, rng, length=50)
        for entry in program.listing:
            if entry.mnemonic == "brn":
                assert 0 <= entry.operands[0] < 50

    def test_different_seeds_differ(self):
        isa = get_isa("flexicore4")
        p1 = random_program(isa, np.random.default_rng(1))
        p2 = random_program(isa, np.random.default_rng(2))
        assert p1.image() != p2.image()


class TestFaultDetection:
    def test_majority_of_faults_detected(self, fc4):
        rng = np.random.default_rng(5)
        study = fault_injection_study(
            fc4, get_isa("flexicore4"), rng, faults=25
        )
        assert study.coverage >= 0.6
        assert study.injected == 25
        assert len(study.details) == 25

    def test_zero_faults(self, fc4):
        rng = np.random.default_rng(5)
        study = fault_injection_study(
            fc4, get_isa("flexicore4"), rng, faults=0
        )
        assert study.coverage == 0.0

    def test_chunks_sized_from_backend_capacity(self):
        # Campaigns chunk by the *selected* backend's lane capacity,
        # not a hardcoded word width: a 1000-fault campaign is 16
        # compiled chunks but a single vector run.
        from repro.netlist.backend import (
            VECTOR_MAX_LANES,
            WORD_LANES,
        )

        assert fault_chunk_size("compiled") == WORD_LANES
        assert fault_chunk_size("interpreted") == 1
        assert fault_chunk_size("vector") == VECTOR_MAX_LANES
        assert fault_chunk_size(None) == fault_chunk_size("compiled")

    def test_same_verdicts_on_every_backend(self, fc4):
        verdicts = {}
        for backend in ("interpreted", "compiled", "vector"):
            study = fault_injection_study(
                fc4, get_isa("flexicore4"),
                np.random.default_rng(5), faults=8,
                max_instructions=80, backend=backend,
            )
            verdicts[backend] = study.details
        assert verdicts["compiled"] == verdicts["interpreted"]
        assert verdicts["vector"] == verdicts["interpreted"]


class TestToggleCoverage:
    def test_directed_vectors_toggle_nearly_everything(self, fc4):
        rng = np.random.default_rng(9)
        result = toggle_coverage_study(
            fc4, get_isa("flexicore4"), rng, instructions=1200
        )
        assert result.passed
        # Section 4.1: "all gates toggle at least once".
        assert result.toggle_fraction > 0.95
        assert result.mean_toggles > 50
