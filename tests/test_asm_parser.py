"""Assembly parser unit tests."""

import pytest

from repro.asm.errors import ParseError
from repro.asm.parser import (
    Location,
    parse_integer,
    parse_line,
    parse_mask,
    parse_register,
    parse_source,
    strip_comment,
)

LOC = Location("test.asm", 1)


class TestComments:
    def test_semicolon(self):
        assert strip_comment("addi 1 ; increment") == "addi 1"

    def test_hash(self):
        assert strip_comment("addi 1 # increment") == "addi 1"

    def test_comment_only_line(self):
        assert parse_line("; nothing here", LOC) == []

    def test_blank_line(self):
        assert parse_line("   ", LOC) == []


class TestLabels:
    def test_label_alone(self):
        [stmt] = parse_line("loop:", LOC)
        assert stmt.label == "loop"

    def test_label_with_instruction(self):
        label, instr = parse_line("loop: load 0", LOC)
        assert label.label == "loop"
        assert instr.mnemonic == "load"
        assert instr.operands == ("0",)

    def test_multiple_labels(self):
        statements = parse_line("a: b: nop", LOC)
        assert [s.label for s in statements[:2]] == ["a", "b"]
        assert statements[2].mnemonic == "nop"


class TestInstructions:
    def test_operand_splitting(self):
        [stmt] = parse_line("br nz, target", LOC)
        assert stmt.mnemonic == "br"
        assert stmt.operands == ("nz", "target")

    def test_mnemonic_case_folding(self):
        [stmt] = parse_line("ADDI 3", LOC)
        assert stmt.mnemonic == "addi"

    def test_bad_mnemonic_raises(self):
        with pytest.raises(ParseError):
            parse_line("12bad 3", LOC)


class TestDirectivesAndMacros:
    def test_directive(self):
        [stmt] = parse_line(".page 2", LOC)
        assert stmt.directive == ".page"
        assert stmt.directive_args == ("2",)

    def test_macro_invocation(self):
        [stmt] = parse_line("%jump loop", LOC)
        assert stmt.macro == "jump"
        assert stmt.macro_args == ("loop",)

    def test_macro_with_multiple_args(self):
        [stmt] = parse_line("%farjump 1, entry", LOC)
        assert stmt.macro_args == ("1", "entry")

    def test_bad_macro_raises(self):
        with pytest.raises(ParseError):
            parse_line("%123bad", LOC)


class TestOperandParsing:
    @pytest.mark.parametrize("token,value", [
        ("0", 0), ("15", 15), ("-3", -3), ("0x1F", 31), ("0b101", 5),
        ("+7", 7),
    ])
    def test_integers(self, token, value):
        assert parse_integer(token) == value

    @pytest.mark.parametrize("token", ["label", "r1x", "1.5", ""])
    def test_non_integers(self, token):
        assert parse_integer(token) is None

    @pytest.mark.parametrize("token,value", [
        ("n", 0b100), ("z", 0b010), ("p", 0b001),
        ("nz", 0b110), ("np", 0b101), ("zp", 0b011), ("nzp", 0b111),
        ("NZP", 0b111),
    ])
    def test_masks(self, token, value):
        assert parse_mask(token) == value

    def test_mask_rejects_other_letters(self):
        assert parse_mask("nq") is None
        assert parse_mask("") is None

    @pytest.mark.parametrize("token,value", [("r0", 0), ("r7", 7),
                                             ("R3", 3)])
    def test_registers(self, token, value):
        assert parse_register(token) == value

    def test_register_rejects_non_register(self):
        assert parse_register("x1") is None


class TestSource:
    def test_line_numbers_in_locations(self):
        statements = parse_source("nop\n\nnop\n", "prog.asm")
        assert [s.location.line for s in statements] == [1, 3]
        assert statements[0].location.source == "prog.asm"

    def test_mixed_program(self):
        source = """
.equ X 2
start:
    load 0        ; read
    %jump start
"""
        statements = parse_source(source)
        kinds = [
            "directive" if s.is_directive else
            "macro" if s.is_macro else
            "label" if s.label else "instr"
            for s in statements
        ]
        assert kinds == ["directive", "label", "instr", "macro"]
