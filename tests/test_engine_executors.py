"""Executor backends: every backend computes the same bytes, and a
killed worker's jobs are requeued exactly once.

The differential classes are the acceptance check of the pluggable
executor layer: the yield study, the DSE sweep, and a conformance
campaign must be byte-identical under ``local``, ``steal`` and
``socket`` (the latter served by two real subprocess workers).  The
kill classes exercise the fault model directly against the executor
protocol.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro import engine as engine_mod
from repro.conformance.runner import run_campaign
from repro.dse.evaluate import evaluate_all
from repro.engine import Engine, job_function
from repro.engine.executors.socketcluster import SocketClusterExecutor
from repro.engine.executors.stealing import WorkStealingExecutor
from repro.fab.process import FC4_WAFER
from repro.fab.yield_model import run_yield_study
from repro.netlist.cores import build_flexicore4

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@job_function("exectest.sleepy", version="1")
def sleepy_job(params, seed):
    time.sleep(params.get("delay", 0.0))
    return params["value"]


def _canon(value):
    """Canonical bytes for a result structure (dict order and float
    repr included), so 'identical' means byte-identical."""
    return json.dumps(value, sort_keys=True, default=repr).encode()


def _spawn_worker(host, port, cache_dir=None):
    """A real ``repro worker join`` process (what the CLI runs)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(REPO_ROOT, "src"), REPO_ROOT]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    code = (
        "from repro.engine.executors.worker import run_worker\n"
        f"run_worker({host!r}, {port}, "
        f"cache_dir={str(cache_dir) if cache_dir else None!r})\n"
    )
    return subprocess.Popen(
        [sys.executable, "-c", code], env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _await_workers(executor, count, timeout=30.0):
    deadline = time.monotonic() + timeout
    while executor.workers < count:
        if time.monotonic() > deadline:
            raise TimeoutError(
                f"only {executor.workers}/{count} workers joined"
            )
        time.sleep(0.02)


def _reap(procs, timeout=10.0):
    for proc in procs:
        try:
            proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=timeout)


@pytest.fixture(scope="module")
def netlist():
    return build_flexicore4()


@pytest.fixture(scope="module")
def baselines(netlist):
    """The ``--executor local`` results every backend must reproduce."""
    serial = Engine(jobs=1)
    return {
        "yield": run_yield_study(netlist, FC4_WAFER, wafers=3,
                                 seed=2022, engine=serial),
        "dse": evaluate_all(engine=serial),
        "conform": run_campaign(0, 8, oracle_names=["asm", "dispatch"],
                                engine=serial, persist=False),
    }


def _campaign_fingerprint(summary):
    # elapsed_s is wall-clock, everything else must match exactly.
    return {key: summary[key] for key in
            ("cases", "slices", "divergences")}


class TestStealDifferential:
    @pytest.fixture(scope="class")
    def steal_engine(self):
        engine = Engine(jobs=2, executor="steal")
        yield engine
        engine.close()

    def test_yield_identical(self, netlist, baselines, steal_engine):
        summary = run_yield_study(netlist, FC4_WAFER, wafers=3,
                                  seed=2022, engine=steal_engine)
        assert summary == baselines["yield"]
        assert _canon(summary) == _canon(baselines["yield"])

    def test_dse_identical(self, baselines, steal_engine):
        assert evaluate_all(engine=steal_engine) == baselines["dse"]

    def test_conform_identical(self, baselines, steal_engine):
        summary = run_campaign(0, 8, oracle_names=["asm", "dispatch"],
                               engine=steal_engine, persist=False)
        assert _canon(_campaign_fingerprint(summary)) == \
            _canon(_campaign_fingerprint(baselines["conform"]))


class TestSocketDifferential:
    """The same differential, over a real two-subprocess-worker cluster."""

    @pytest.fixture(scope="class")
    def cluster(self):
        executor = SocketClusterExecutor(bind="127.0.0.1:0",
                                         min_workers=2,
                                         worker_wait_s=60.0)
        host, port = executor.address
        procs = [_spawn_worker(host, port) for _ in range(2)]
        _await_workers(executor, 2)
        engine = Engine(jobs=2, executor=executor)
        yield engine, executor
        engine.close()
        _reap(procs)

    def test_yield_identical(self, netlist, baselines, cluster):
        engine, executor = cluster
        summary = run_yield_study(netlist, FC4_WAFER, wafers=3,
                                  seed=2022, engine=engine)
        assert summary == baselines["yield"]
        assert _canon(summary) == _canon(baselines["yield"])
        assert executor.describe()["workers"] == 2

    def test_dse_identical(self, baselines, cluster):
        engine, _executor = cluster
        assert evaluate_all(engine=engine) == baselines["dse"]

    def test_conform_identical(self, baselines, cluster):
        engine, _executor = cluster
        summary = run_campaign(0, 8, oracle_names=["asm", "dispatch"],
                               engine=engine, persist=False)
        assert _canon(_campaign_fingerprint(summary)) == \
            _canon(_campaign_fingerprint(baselines["conform"]))


class TestCliDifferential:
    def test_yield_table_bytes_match_across_executors(self, capsys):
        """``repro yield`` prints the same table under every backend."""
        from repro.cli import main

        outputs = {}
        for flags in ([], ["--executor", "steal", "--jobs", "2"]):
            try:
                assert main(["yield", "--wafers", "2", "--seed", "7",
                             *flags]) == 0
                outputs[tuple(flags)] = capsys.readouterr().out
            finally:
                engine_mod.current_engine().close()
                engine_mod.reset()
        assert len(set(outputs.values())) == 1


def _drain(executor, expect, timeout=60.0):
    """Collect results until ``expect`` distinct task ids have
    reported; returns {task_id: [outcomes, ...]} (a task id appearing
    twice would grow a second list entry)."""
    seen = {}
    deadline = time.monotonic() + timeout
    while len(seen) < expect:
        if time.monotonic() > deadline:
            raise TimeoutError(f"only {sorted(seen)} of {expect} "
                               f"results arrived")
        item = executor.next_result(0.1)
        if item is None:
            continue
        task_id, outcomes, _obs_payload = item
        seen.setdefault(task_id, []).append(outcomes)
    return seen


class TestSocketWorkerDeath:
    def test_killed_workers_jobs_requeued_exactly_once(self):
        executor = SocketClusterExecutor(bind="127.0.0.1:0",
                                         min_workers=2,
                                         worker_wait_s=60.0)
        host, port = executor.address
        procs = [_spawn_worker(host, port) for _ in range(2)]
        try:
            _await_workers(executor, 2)
            # Two slow tasks pin both workers; two quick ones queue.
            for task_id, delay in ((0, 1.0), (1, 1.0), (2, 0.05),
                                   (3, 0.05)):
                executor.submit(task_id, [(
                    sleepy_job, {"value": task_id, "delay": delay},
                    None, f"sleepy{task_id}", None,
                )], None)
            deadline = time.monotonic() + 15.0
            while True:
                members = executor.describe()["members"]
                if len(members) == 2 and \
                        all(m["busy"] for m in members):
                    break
                if time.monotonic() > deadline:
                    raise TimeoutError("workers never got busy")
                time.sleep(0.01)
            procs[0].kill()

            seen = _drain(executor, 4)
            assert sorted(seen) == [0, 1, 2, 3]
            # Exactly once: one result per task, every outcome ok.
            assert all(len(reports) == 1 for reports in seen.values())
            for task_id, reports in seen.items():
                (outcome,) = reports[0]
                assert outcome[0] == "ok", outcome
                assert outcome[1] == task_id
            assert executor.requeues == 1
            assert len(executor._requeued) == 1
            assert executor.describe()["workers"] == 1
        finally:
            executor.shutdown()
            _reap(procs)


class TestStealWorkerDeath:
    def test_killed_workers_jobs_requeued(self):
        executor = WorkStealingExecutor(workers=2)
        executor.start()
        try:
            for task_id in range(6):
                executor.submit(task_id, [(
                    sleepy_job, {"value": task_id, "delay": 0.3},
                    None, f"sleepy{task_id}", None,
                )], None)
            # Both workers have a task in flight the moment the first
            # submit lands; kill one before it can finish.
            executor._procs[0].kill()
            seen = _drain(executor, 6)
            assert sorted(seen) == list(range(6))
            assert all(len(reports) == 1 for reports in seen.values())
            for task_id, reports in seen.items():
                (outcome,) = reports[0]
                assert outcome[0] == "ok", outcome
                assert outcome[1] == task_id
            stats = executor.describe()
            assert stats["requeues"] == 1
            assert stats["alive"] == 1
        finally:
            executor.shutdown()

    def test_engine_survives_worker_loss(self, tmp_path):
        """End to end: an engine over a stealing pool finishes every
        job (and keeps the cache coherent) when a worker dies."""
        executor = WorkStealingExecutor(workers=2)
        engine = Engine(jobs=2, cache=tmp_path, executor=executor)
        from repro.engine import Job, spawn_seeds

        nodes = [
            engine.submit(Job(sleepy_job,
                              {"value": index, "delay": 0.2},
                              seed=child, label=f"sleepy{index}"))
            for index, child in enumerate(spawn_seeds(13, 4))
        ]
        killer_done = []

        def hook(event, payload):
            if event == "job_done" and not killer_done:
                killer_done.append(True)
                executor._procs[-1].kill()

        engine.hooks.add(hook)
        results = engine.run_graph()
        engine.close()
        assert results == [0, 1, 2, 3]
        assert all(node.done for node in nodes)
        # Every completed job made it into the cache exactly once.
        assert engine.cache.stats()["entries"] == 4
