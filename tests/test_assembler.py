"""Two-pass assembler: layout, symbols, paging, and round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import (
    Assembler,
    LayoutError,
    PAGE_SIZE,
    ParseError,
    SymbolError,
    assemble,
    disassemble,
    roundtrip_ok,
)
from repro.isa import get_isa

FC4 = get_isa("flexicore4")


class TestBasics:
    def test_simple_program(self):
        program = assemble("addi 1\nstore 2\n", FC4)
        assert program.static_instructions == 2
        assert program.size_bytes == 2
        assert program.image()[:2] == FC4.encode("addi", (1,)) + \
            FC4.encode("store", (2,))

    def test_labels_resolve_to_offsets(self):
        program = assemble("nandi 0\nloop: addi 1\nbrn loop\n", FC4)
        assert program.labels["loop"] == (0, 1)
        assert program.label_address("loop") == 1

    def test_equ_constants(self):
        program = assemble(".equ OPORT 1\nstore OPORT\n", FC4)
        assert program.listing[0].operands == (1,)

    def test_equ_chains(self):
        program = assemble(
            ".equ A 3\n.equ B A\nload B\n", FC4
        )
        assert program.listing[0].operands == (3,)

    def test_mnemonic_histogram(self):
        program = assemble("addi 1\naddi 2\nxori 3\n", FC4)
        assert program.mnemonic_histogram() == {"addi": 2, "xori": 1}

    def test_listing_text_contains_addresses(self):
        program = assemble("addi 1\n", FC4)
        assert "addi 1" in program.text()


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(ParseError):
            assemble("frobnicate 1\n", FC4)

    def test_undefined_label(self):
        with pytest.raises(SymbolError):
            assemble("brn nowhere\n", FC4)

    def test_duplicate_label(self):
        with pytest.raises(SymbolError):
            assemble("a: nandi 0\na: nandi 0\n", FC4)

    def test_duplicate_equ(self):
        with pytest.raises(SymbolError):
            assemble(".equ X 1\n.equ X 2\n", FC4)

    def test_operand_count_mismatch(self):
        with pytest.raises(ParseError):
            assemble("addi 1, 2\n", FC4)

    def test_unknown_directive(self):
        with pytest.raises(ParseError):
            assemble(".banana 1\n", FC4)

    def test_error_reports_location(self):
        with pytest.raises(SymbolError) as excinfo:
            assemble("nandi 0\nbrn gone\n", FC4, source_name="prog.asm")
        assert "prog.asm:2" in str(excinfo.value)


class TestPaging:
    def test_page_overflow_detected(self):
        source = "\n".join(["addi 1"] * (PAGE_SIZE + 1))
        with pytest.raises(LayoutError):
            assemble(source, FC4)

    def test_exactly_one_page_fits(self):
        source = "\n".join(["addi 1"] * PAGE_SIZE)
        program = assemble(source, FC4)
        assert program.size_bytes == PAGE_SIZE

    def test_page_directive_switches_pages(self):
        program = assemble("addi 1\n.page 2\naddi 2\n", FC4)
        assert program.page_numbers == [0, 2]
        image = program.image()
        assert len(image) == 3 * PAGE_SIZE
        assert image[2 * PAGE_SIZE] == FC4.encode("addi", (2,))[0]

    def test_cross_page_branch_rejected(self):
        source = "brn far\n.page 1\nfar: addi 1\n"
        with pytest.raises(LayoutError):
            assemble(source, FC4)

    def test_at_prefix_waives_page_check(self):
        source = "brn @far\n.page 1\nnandi 0\nfar: addi 1\n"
        program = assemble(source, FC4)
        # The branch encodes far's page-local offset (1), not its page.
        assert program.listing[0].operands == (1,)

    def test_bad_page_number(self):
        with pytest.raises(LayoutError):
            assemble(".page 16\naddi 1\n", FC4)

    def test_labels_are_page_local_pairs(self):
        program = assemble(".page 3\nhere: addi 1\n", FC4)
        assert program.labels["here"] == (3, 0)


class TestMultiIsa:
    @pytest.mark.parametrize("isa_name,source", [
        ("flexicore4", "loop: load 0\naddi 1\nstore 1\nnandi 0\nbrn loop\n"),
        ("flexicore8", "ldb 0xAB\nstore 2\nload 2\nstore 1\n"),
        ("extacc", "start: addi 3\nbr nzp, start\ncall start\nret\nhalt\n"),
        ("loadstore", "movi r1, 9\nadd r1, r1\nout r1\nhalt\n"),
    ])
    def test_roundtrip_across_isas(self, isa_name, source):
        program = assemble(source, get_isa(isa_name))
        assert roundtrip_ok(program)

    def test_loadstore_register_syntax(self):
        program = assemble("movi r5, 3\n", get_isa("loadstore"))
        assert program.listing[0].operands == (5, 3)

    def test_mask_syntax(self):
        program = assemble("start: br nz, start\n", get_isa("extacc"))
        assert program.listing[0].operands == (0b110, 0)


class TestDisassembler:
    def test_disassembles_program(self):
        program = assemble("addi 1\nstore 2\nbrn 0\n", FC4)
        lines = disassemble(program.image()[:3], FC4)
        assert [line.mnemonic for line in lines] == ["addi", "store", "brn"]

    def test_undecodable_bytes_become_byte_lines(self):
        lines = disassemble(bytes([0b0011_1000]), FC4)
        assert lines[0].mnemonic is None
        assert ".byte" in lines[0].text

    @settings(max_examples=30)
    @given(st.lists(
        st.sampled_from(["addi 1", "xori 5", "load 3", "store 2",
                         "nand 4", "brn 0"]),
        min_size=1, max_size=40,
    ))
    def test_linear_sweep_covers_whole_program(self, instructions):
        program = assemble("\n".join(instructions), FC4)
        lines = disassemble(program.image()[:program.size_bytes], FC4)
        assert len(lines) == len(instructions)
