"""Load-store ISA (Section 6.2): two-operand semantics and encodings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import DecodeError, get_isa

ISA = get_isa("loadstore")


def execute(mnemonic, operands, regs=None, carry=0, pc=0, input_value=0):
    state = ISA.new_state()
    state.carry = carry
    state.pc = pc
    state.input_fn = lambda: input_value
    if regs:
        for index, value in regs.items():
            state.mem[index] = value
    decoded = ISA.decode(ISA.encode(mnemonic, operands))
    ISA.execute(state, decoded)
    return state


class TestShape:
    def test_all_instructions_are_sixteen_bits(self):
        assert all(spec.size == 2 for spec in ISA.specs.values())
        assert ISA.fetch_bits == 16

    def test_not_an_accumulator_machine(self):
        assert ISA.accumulator is False

    def test_register_count(self):
        assert ISA.mem_words == 8


class TestRTypeSemantics:
    @given(st.integers(0, 15), st.integers(0, 15))
    def test_add(self, a, b):
        state = execute("add", (1, 2), regs={1: a, 2: b})
        assert state.read_reg(1) == (a + b) & 0xF
        assert state.carry == (a + b) >> 4

    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 1))
    def test_adc(self, a, b, carry):
        state = execute("adc", (1, 2), regs={1: a, 2: b}, carry=carry)
        assert state.read_reg(1) == (a + b + carry) & 0xF

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_sub_and_carry_convention(self, a, b):
        state = execute("sub", (1, 2), regs={1: a, 2: b})
        assert state.read_reg(1) == (a - b) & 0xF
        assert state.carry == (1 if a >= b else 0)

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_logic_ops(self, a, b):
        for mnemonic, fn in (("and", lambda x, y: x & y),
                             ("or", lambda x, y: x | y),
                             ("xor", lambda x, y: x ^ y)):
            state = execute(mnemonic, (1, 2), regs={1: a, 2: b})
            assert state.read_reg(1) == fn(a, b)

    def test_mov_and_xch(self):
        state = execute("mov", (1, 2), regs={1: 3, 2: 9})
        assert state.read_reg(1) == 9
        state = execute("xch", (1, 2), regs={1: 3, 2: 9})
        assert state.read_reg(1) == 9 and state.read_reg(2) == 3

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_multiplier(self, a, b):
        product = a * b
        state = execute("mull", (1, 2), regs={1: a, 2: b})
        assert state.read_reg(1) == product & 0xF
        state = execute("mulh", (1, 2), regs={1: a, 2: b})
        assert state.read_reg(1) == product >> 4

    @given(st.integers(0, 15), st.integers(1, 3))
    def test_shifts(self, a, shamt):
        state = execute("lsri", (1, shamt), regs={1: a})
        assert state.read_reg(1) == a >> shamt
        signed = a - 16 if a & 8 else a
        state = execute("asri", (1, shamt), regs={1: a})
        assert state.read_reg(1) == (signed >> shamt) & 0xF


class TestITypeSemantics:
    @given(st.integers(0, 15), st.integers(0, 255))
    def test_movi_truncates_to_width(self, a, imm):
        state = execute("movi", (1, imm), regs={1: a})
        assert state.read_reg(1) == imm & 0xF

    @given(st.integers(0, 15), st.integers(0, 255))
    def test_addi(self, a, imm):
        state = execute("addi", (1, imm), regs={1: a})
        assert state.read_reg(1) == (a + (imm & 0xF)) & 0xF


class TestControlFlow:
    @given(st.integers(0, 15), st.integers(1, 7))
    def test_branch_nzp_on_register(self, value, mask):
        state = execute("br", (mask, 2, 0x50), regs={2: value})
        negative = bool(value & 8)
        zero = value == 0
        positive = not negative and not zero
        taken = bool((mask & 4 and negative) or (mask & 2 and zero)
                     or (mask & 1 and positive))
        assert (state.pc == 0x50) == taken

    def test_unconditional_jump_idiom(self):
        # 'br nzp, r0, t' is always taken: r0 is n, z or p whatever it is.
        for value in (0, 5, 12):
            state = execute("br", (7, 0, 0x10), regs={0: value})
            assert state.pc == 0x10

    def test_call_ret(self):
        state = execute("call", (0x20,), pc=6)
        assert state.pc == 0x20 and state.retaddr == 8
        state = ISA.new_state()
        state.retaddr = 0x44
        decoded = ISA.decode(ISA.encode("ret", ()))
        ISA.execute(state, decoded)
        assert state.pc == 0x44


class TestIo:
    def test_in_reads_input_bus(self):
        state = execute("in", (3,), input_value=0xE)
        assert state.read_reg(3) == 0xE

    def test_out_writes_output_bus(self):
        outputs = []
        state = ISA.new_state()
        state.mem[5] = 0xB
        state.output_fn = outputs.append
        decoded = ISA.decode(ISA.encode("out", (5,)))
        ISA.execute(state, decoded)
        assert outputs == [0xB]


class TestEncoding:
    def test_roundtrip_all_instructions(self):
        for mnemonic in ISA.mnemonics():
            spec = ISA.spec(mnemonic)
            operands = tuple(
                3 if op.kind.name == "TARGET" else max(op.lo, 1)
                for op in spec.operands
            )
            encoded = ISA.encode(mnemonic, operands)
            decoded = ISA.decode(encoded)
            assert decoded.mnemonic == mnemonic
            assert decoded.spec.encode(decoded.operands) == encoded

    def test_branch_never_is_invalid(self):
        word = (0b001 << 13) | (0 << 10) | (1 << 7) | 5
        with pytest.raises(DecodeError):
            ISA.decode(bytes([word >> 8, word & 0xFF]))

    def test_truncated_instruction_raises(self):
        with pytest.raises(DecodeError):
            ISA.decode(bytes([0x00]))
