"""Technology models: cells, TFT device statistics, power/energy."""

import numpy as np
import pytest

from repro.tech import cells, power, tft


class TestCellLibrary:
    def test_exactly_thirteen_cells(self):
        # Figure 1: a thirteen-cell library.
        assert len(cells.LIBRARY) == 13

    def test_two_drive_variants_where_published(self):
        for function in ("buf", "dff", "inv", "nand2", "nor2"):
            assert len(cells.cells_by_function(function)) == 2
        for function in ("mux2", "xor2", "xnor2"):
            assert len(cells.cells_by_function(function)) == 1

    def test_nand2_is_the_area_unit(self):
        assert cells.get_cell("NAND2_X1").area == 1.0

    def test_higher_drive_is_bigger_and_faster(self):
        for function in ("buf", "dff", "inv", "nand2", "nor2"):
            x1, x2 = cells.cells_by_function(function)
            assert x2.area > x1.area
            assert x2.delay < x1.delay

    def test_every_cell_has_pullups(self):
        # n-type logic with resistive pull-up: every output has one+.
        for cell in cells.LIBRARY.values():
            assert cell.pullups >= 1
            assert cell.devices > cell.pullups

    def test_unknown_cell(self):
        with pytest.raises(KeyError):
            cells.get_cell("AOI22_X1")

    def test_sequential_flag(self):
        assert cells.get_cell("DFF_X1").sequential
        assert not cells.get_cell("NAND2_X1").sequential


class TestTftModel:
    def test_figure1_statistics(self):
        assert tft.VTH_V == (1.29, 0.19)
        assert tft.ION_UA == (34.85, 7.9)

    def test_sample_device(self):
        rng = np.random.default_rng(0)
        device = tft.sample_device(rng)
        assert 0.5 < device.vth_v < 2.1
        assert device.ion_ua > 0
        assert device.ioff_na >= 0

    def test_drive_factor_normalized_at_nominal(self):
        assert tft.drive_factor(4.5) == pytest.approx(1.0)

    def test_drive_collapses_toward_threshold(self):
        assert tft.drive_factor(3.0) < 0.35
        assert tft.drive_factor(1.5) < 0.01

    def test_delay_factor_monotonic(self):
        assert tft.delay_factor(3.0) > tft.delay_factor(4.0) > \
            tft.delay_factor(4.5)

    def test_static_current_linear_in_v(self):
        assert tft.static_current_factor(3.0) == pytest.approx(3.0 / 4.5)

    def test_speed_factor_distribution(self):
        rng = np.random.default_rng(1)
        samples = tft.sample_speed_factor(rng, size=20000)
        assert np.median(samples) == pytest.approx(1.0, rel=0.05)
        assert 0.1 < np.std(np.log(samples)) < 0.3


class TestPowerModel:
    def test_power_scales_with_v_squared(self):
        p45 = power.OperatingPoint(vdd=4.5).pullup_power_w()
        p30 = power.OperatingPoint(vdd=3.0).pullup_power_w()
        assert p30 / p45 == pytest.approx((3.0 / 4.5) ** 2)

    def test_refined_pullups_cut_power(self):
        normal = power.OperatingPoint(vdd=4.5)
        refined = power.OperatingPoint(vdd=4.5, refined_pullups=True)
        assert refined.pullup_power_w() == pytest.approx(
            normal.pullup_power_w() / 1.5
        )

    def test_static_power_proportional_to_pullups(self):
        point = power.OperatingPoint()
        assert power.static_power_w(200, point) == pytest.approx(
            2 * power.static_power_w(100, point)
        )

    def test_current_ratio_matches_measured_chips(self):
        """Section 4.2: 1.1 mA at 4.5 V vs 0.73 mA at 3 V (ratio 0.66)."""
        p45 = power.static_power_w(586, power.OperatingPoint(vdd=4.5))
        p30 = power.static_power_w(586, power.OperatingPoint(vdd=3.0))
        i45 = power.supply_current_a(p45, 4.5)
        i30 = power.supply_current_a(p30, 3.0)
        assert i30 / i45 == pytest.approx(3.0 / 4.5)

    def test_energy_is_power_times_time(self):
        assert power.energy_j(4.5e-3, 12500) == pytest.approx(4.5e-3)

    def test_energy_per_instruction_near_paper(self):
        from repro.netlist import build_flexicore4

        p = power.static_power_w(build_flexicore4().pullups,
                                 power.OperatingPoint(vdd=4.5))
        nj = power.energy_per_instruction_j(p) * 1e9
        assert 250 < nj < 500  # paper: 360 nJ

    def test_battery_life_two_weeks_headline(self):
        """Section 5.2: IIR+thresholding once per second on a 3 V, 5 mAh
        battery runs for about two weeks with perfect power gating."""
        from repro.experiments.figures import figure8

        rows = figure8()["rows"]
        per_sample_j = (rows["IntAvg"]["energy_uj"]
                        + rows["Thresholding"]["energy_uj"]) * 1e-6
        # One sample per second -> average power = energy per second.
        seconds = power.battery_life_s(per_sample_j, battery_mah=5.0,
                                       battery_v=3.0)
        days = seconds / 86400
        assert 5 < days < 60  # paper: ~two weeks

    def test_daily_energy_budget_matches_paper_math(self):
        # Paper: one inference per second at ~42 uJ -> 3.6 J/day.
        daily = 41.6e-6 * 86400
        assert daily == pytest.approx(3.6, rel=0.01)
