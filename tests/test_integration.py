"""End-to-end integration: the full paper pipeline in one test module.

These tests chain the layers the way the paper's project did:
write assembly -> assemble -> run on the ISA model -> run the same
binary on the gate-level netlist -> synthesize (export) -> fabricate ->
probe -> account energy, checking cross-layer consistency at each seam.
"""

import numpy as np
import pytest

from repro.asm import Assembler, assemble
from repro.isa import get_isa
from repro.kernels.kernel import Target
from repro.kernels.macros import build_library
from repro.sim import run_program


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def artifacts(self):
        """Build everything once: program, netlist, wafer, probe."""
        from repro.fab import FC4_WAFER, fabricate_wafer
        from repro.netlist import analyze, build_flexicore4

        isa = get_isa("flexicore4")
        program = assemble(
            "loop: load 0\nxori 5\nstore 1\nnandi 0\nbrn loop\n", isa
        )
        netlist = build_flexicore4()
        rng = np.random.default_rng(77)
        wafer = fabricate_wafer(netlist, FC4_WAFER, rng)
        probe = wafer.probe(4.5, rng)
        return {
            "isa": isa, "program": program, "netlist": netlist,
            "timing": analyze(netlist), "wafer": wafer, "probe": probe,
        }

    def test_functional_and_gate_models_agree(self, artifacts):
        from repro.netlist import run_cross_check

        result = run_cross_check(
            artifacts["netlist"], artifacts["isa"],
            artifacts["program"], inputs=list(range(16)),
            max_instructions=80,
        )
        assert result.passed, result.first_mismatch

    def test_verilog_export_covers_the_netlist(self, artifacts):
        from repro.netlist import to_verilog

        text = to_verilog(artifacts["netlist"])
        assert text.count("DFF") >= artifacts["netlist"].flop_count

    def test_probed_yield_consistent_with_timing(self, artifacts):
        """Every die the probe passed must individually meet timing and
        be defect-free -- no accounting drift between layers."""
        probe = artifacts["probe"]
        timing = artifacts["timing"]
        for die, record in zip(artifacts["wafer"].dies, probe.records):
            expected = (not die.has_defect) and timing.meets(
                12.5e3, vdd=4.5, speed_factor=die.speed_factor
            )
            assert record.functional == expected

    def test_energy_accounting_closes(self, artifacts):
        """Chip-level energy = per-die power x simulated time."""
        from repro.tech.power import energy_j

        result, _ = run_program(
            artifacts["program"], inputs=list(range(12)),
        )
        probe = artifacts["probe"]
        mean_current_ma = probe.current_statistics()[0]
        power_w = mean_current_ma * 1e-3 * 4.5
        energy = energy_j(power_w, result.instructions)
        # ~60 instructions at ~400 nJ each: tens of microjoules.
        assert 5e-6 < energy < 1e-4

    def test_good_die_cost_is_sub_cent_at_volume(self, artifacts):
        from repro.fab.cost import flexible_die_cost

        estimate = flexible_die_cost(
            artifacts["probe"].yield_fraction(True)
        )
        assert estimate.sub_cent


class TestKernelBinariesOnSilicon:
    """Single-page Table 6 kernels run unmodified on the gate netlist."""

    @pytest.mark.parametrize("kernel_name,inputs", [
        ("thresholding", [1, 12, 3]),
        ("intavg", [8, 4, 2]),
        ("parity", [0xF, 0x0, 0x3, 0x5]),
        ("fir", [1, 2, 3, 4]),
    ])
    def test_kernel_on_gate_level(self, kernel_name, inputs):
        from repro.kernels.suite import get_kernel
        from repro.netlist import build_flexicore4, run_cross_check

        target = Target.named("flexicore4")
        kernel = get_kernel(kernel_name)
        program = kernel.program(target)
        if len(program.pages) > 1:
            pytest.skip("gate-level harness is single-page")
        result = run_cross_check(
            build_flexicore4(), target.isa, program,
            inputs=inputs, max_instructions=600,
        )
        assert result.passed, result.first_mismatch


class TestReprogrammingScenario:
    def test_same_die_two_programs(self):
        """Field reprogrammability end to end: two different binaries on
        one gate-level 'die' produce their respective behaviours."""
        from repro.netlist import build_flexicore4, run_cross_check

        isa = get_isa("flexicore4")
        netlist = build_flexicore4()
        doubler = assemble(
            "loop: load 0\nstore 2\nadd 2\nstore 1\nnandi 0\nbrn loop\n",
            isa,
        )
        inverter = assemble(
            "loop: load 0\nnandi 15\nstore 1\nnandi 0\nbrn loop\n", isa
        )
        for program in (doubler, inverter):
            result = run_cross_check(
                netlist, isa, program, inputs=[1, 2, 3],
                max_instructions=40,
            )
            assert result.passed

    def test_mmu_extends_reach_beyond_128_bytes(self):
        isa = get_isa("flexicore4")
        library = build_library(isa)
        # 150+ bytes of work spread over two pages.
        source = ["    %ldi 1", "    store 1"]
        source += ["    addi 0"] * 100
        source += ["    %farjump 1, more", ".page 1", "more:"]
        source += ["    addi 0"] * 60
        source += ["    %ldi 2", "    store 1", "    %halt"]
        program = Assembler(isa, library).assemble("\n".join(source))
        assert program.size_bytes > 128
        result, sink = run_program(program)
        assert sink.values == [1, 2]
        # On the base ISA %halt is the branch-to-self idiom.
        assert result.reason == "self_branch"
