"""Design-space exploration: Section 6 orderings and headline shapes."""

import pytest

from repro.dse import (
    ALL_DESIGNS,
    BASELINE,
    DSE_DESIGNS,
    evaluate_all,
    evaluate_design,
    feature_sweep,
    revised_isa_report,
)
from repro.netlist.dse_cores import (
    DSE_FEATURES,
    build_extended_core,
    build_loadstore_core,
)
from repro.netlist.sta import analyze


@pytest.fixture(scope="module")
def wide():
    return evaluate_all()


@pytest.fixture(scope="module")
def narrow():
    return evaluate_all(bus_bits=8)


@pytest.fixture(scope="module")
def sweep():
    return feature_sweep()


class TestFeatureAreas:
    """Figure 9's hardware-cost ordering."""

    @pytest.fixture(scope="class")
    def areas(self):
        base = build_extended_core(()).nand2_area
        return {
            feature: build_extended_core((feature,)).nand2_area / base
            for feature in DSE_FEATURES
        }

    def test_cheap_trio_under_fifteen_percent(self, areas):
        # Paper: coalescing, shifter and condition codes are < 10%.
        for feature in ("adc", "shift", "flags"):
            assert areas[feature] < 1.15, feature

    def test_multiplier_is_expensive(self, areas):
        assert areas["mult"] > 1.35

    def test_double_memory_is_most_expensive(self, areas):
        # Paper: > 70% area cost; it is rejected from the revised ISA.
        assert areas["mem2x"] > 1.5
        assert areas["mem2x"] == max(areas.values())

    def test_every_feature_costs_area(self, areas):
        assert all(ratio > 1.0 for ratio in areas.values())

    def test_second_port_memory_cost(self):
        """Section 3.5: a second read port adds ~39% to the FlexiCore4
        memory; compare the LS (two-port) and MC-LS (one-port) builds."""
        two_port = build_loadstore_core("SC")
        one_port = build_loadstore_core("MC")
        mem2 = two_port.module_breakdown()["memory"]["area"]
        mem1 = one_port.module_breakdown()["memory"]["area"]
        assert 1.2 < mem2 / mem1 < 1.75


class TestCodeSizeSweep:
    def test_shift_is_the_biggest_code_saver(self, sweep):
        _, reports = sweep
        by_feature = {r.feature: r.code_ratio for r in reports}
        assert by_feature["shift"] == min(by_feature.values())
        assert by_feature["shift"] < 0.85

    def test_double_memory_does_not_change_code(self, sweep):
        # Figure 9: "Increasing the size of data-memory does not effect
        # test code size".
        _, reports = sweep
        by_feature = {r.feature: r.code_ratio for r in reports}
        assert by_feature["mem2x"] == pytest.approx(1.0)

    def test_revised_isa_shrinks_code(self, sweep):
        revised = revised_isa_report()
        assert revised["code_ratio"] < 0.85
        # Every kernel is no worse than the base.
        assert all(ratio <= 1.001
                   for ratio in revised["code_ratio_by_kernel"].values())

    def test_base_report_is_unity(self, sweep):
        base, _ = sweep
        assert base.area_ratio == 1.0
        assert base.code_ratio == 1.0


class TestDesignOrderings:
    """Figure 12's area orderings."""

    def test_acc_sc_is_smallest_dse_design(self, wide):
        areas = {d.name: wide[d.name].nand2_area for d in DSE_DESIGNS}
        assert min(areas, key=areas.get) == "Acc SC"

    def test_acc_multicycle_is_largest_acc(self, wide):
        # Section 6.2: for the accumulator ISA, multicycle is largest.
        assert wide["Acc MC"].nand2_area > wide["Acc P"].nand2_area \
            > wide["Acc SC"].nand2_area

    def test_ls_multicycle_not_larger_than_ls_sc(self, wide):
        # Section 6.2: dropping the second port offsets the MC control.
        assert wide["LS MC"].nand2_area <= wide["LS SC"].nand2_area * 1.01

    def test_ls_designs_larger_than_acc(self, wide):
        for micro in ("SC", "P", "MC"):
            assert wide[f"LS {micro}"].nand2_area > \
                wide[f"Acc {micro}"].nand2_area

    def test_baseline_smaller_than_all_dse_designs(self, wide):
        base_area = wide["FlexiCore4"].nand2_area
        for design in DSE_DESIGNS:
            assert wide[design.name].nand2_area > base_area


class TestEnergyAndPerformance:
    def test_pipelined_designs_beat_baseline_energy(self, wide):
        base = wide["FlexiCore4"]
        for name in ("Acc P", "LS P"):
            assert wide[name].mean_relative(base, "energy_j") < 0.85

    def test_ls_pipelined_is_best_with_wide_bus(self, wide):
        # Section 6.2: "the best performing core is the 2-stage
        # load-store machine".
        base = wide["FlexiCore4"]
        energies = {
            d.name: wide[d.name].mean_relative(base, "energy_j")
            for d in DSE_DESIGNS
        }
        assert min(energies, key=energies.get) == "LS P"

    def test_pipelined_perf_gain_in_paper_band(self, wide):
        # Paper: SC/pipelined cores outperform FlexiCore4 by 53-115%.
        base = wide["FlexiCore4"]
        speedup = 1.0 / wide["Acc P"].mean_relative(base, "time_s")
        assert 1.4 < speedup < 3.5

    def test_shift_heavy_kernels_gain_most(self, wide):
        base = wide["FlexiCore4"]
        accp = wide["Acc P"]

        def speedup(kernel):
            return (base.kernels[kernel].time_s
                    / accp.kernels[kernel].time_s)

        assert speedup("IntAvg") > speedup("Thresholding")
        assert speedup("XorShift8") > speedup("Decision Tree")


class TestBusRestriction:
    """Figure 13's 8-bit-bus configuration."""

    def test_ls_sc_and_p_infeasible(self, narrow):
        for name in ("LS SC", "LS P"):
            metrics = narrow[name]
            assert not any(k.feasible for k in metrics.kernels.values())

    def test_ls_mc_remains_feasible(self, narrow):
        assert all(k.feasible
                   for k in narrow["LS MC"].kernels.values())

    def test_acc_designs_all_feasible(self, narrow):
        for name in ("Acc SC", "Acc P", "Acc MC"):
            assert all(k.feasible
                       for k in narrow[name].kernels.values())

    def test_acc_pipelined_is_best_with_narrow_bus(self, narrow, wide):
        # Section 6.3: without integrated program memory the pipelined
        # accumulator design is the preferred point.
        base = wide["FlexiCore4"]
        feasible = {
            d.name: narrow[d.name].mean_relative(base, "energy_j")
            for d in DSE_DESIGNS
            if all(k.feasible for k in narrow[d.name].kernels.values())
        }
        assert min(feasible, key=feasible.get) == "Acc P"


class TestStaOnDseCores:
    def test_mult_lengthens_critical_path(self):
        base = analyze(build_extended_core(()))
        mult = analyze(build_extended_core(("mult",)))
        assert mult.critical_delay_units > base.critical_delay_units

    def test_designs_build_and_validate(self):
        for design in ALL_DESIGNS:
            netlist = design.build_netlist()
            assert netlist.validate()

    def test_metrics_shape(self, wide):
        metrics = wide["Acc SC"]
        assert metrics.static_power_w > 0
        assert metrics.frequency_hz > 1e3
        assert len(metrics.kernels) == 7
        assert metrics.total_code_bits() > 0
