#!/usr/bin/env python3
"""Yield study: fabricate virtual wafers and probe them (Section 4).

Reproduces the paper's manufacturing story: build the FlexiCore4 and
FlexiCore8 gate-level netlists, 'fabricate' wafers of them under their
respective process corners, probe every die at 3 V and 4.5 V with the
test-vector pass/fail criterion, and print Table 5 plus the Figure 6/7
wafer maps and the Section 4.2 process-variation statistics.

Run:  python examples/yield_study.py
"""

import numpy as np

from repro.fab import FC4_WAFER, FC8_WAFER, fabricate_wafer
from repro.netlist import build_flexicore4, build_flexicore8, analyze


def render_map(probe):
    cells = {
        (record.site.row, record.site.col): record
        for record in probe.records
    }
    rows = max(r for r, _ in cells) + 1
    cols = max(c for _, c in cells) + 1
    lines = []
    for r in range(rows):
        line = []
        for c in range(cols):
            record = cells.get((r, c))
            if record is None:
                line.append(" .")
            elif record.functional:
                line.append(" O")
            elif record.failure_mode == "timing":
                line.append(" t")
            else:
                line.append(" #")
        lines.append("".join(line))
    return "\n".join(lines)


def main():
    rng = np.random.default_rng(2022)
    for name, build, process in (
        ("FlexiCore4", build_flexicore4, FC4_WAFER),
        ("FlexiCore8", build_flexicore8, FC8_WAFER),
    ):
        netlist = build()
        timing = analyze(netlist)
        print(f"\n==== {name}: {netlist.gate_count} gates, "
              f"{netlist.device_count} devices, "
              f"{netlist.area_mm2:.2f} mm^2, "
              f"fmax(4.5V) = {timing.fmax_hz(4.5) / 1e3:.1f} kHz ====")
        wafer = fabricate_wafer(netlist, process, rng)
        for voltage in (4.5, 3.0):
            probe = wafer.probe(voltage, rng)
            mean, std, rsd = probe.current_statistics()
            print(f"\n{name} at {voltage} V: "
                  f"yield {100 * probe.yield_fraction(True):.0f}% "
                  f"(inclusion zone), "
                  f"{100 * probe.yield_fraction(False):.0f}% (full wafer); "
                  f"current {mean:.2f} mA +- {std:.2f} "
                  f"(RSD {100 * rsd:.1f}%)")
            print("wafer map (O = functional, t = timing fail, "
                  "# = defective, . = no die):")
            print(render_map(probe))


if __name__ == "__main__":
    main()
