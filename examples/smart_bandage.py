#!/usr/bin/env python3
"""Smart bandage: a Table 1 application end to end.

A flexible smart bandage (Section 3.2) monitors a wound sensor, smooths
the noisy reading with the IntAvg IIR filter, then thresholds it -- and
must live for weeks on a printed battery.  This example runs the real
kernel binaries on the simulated FlexiCore4 and reproduces the paper's
Section 5.2 battery-life arithmetic.

Run:  python examples/smart_bandage.py
"""

import numpy as np

from repro.kernels.kernel import Target
from repro.kernels.suite import get_kernel
from repro.tech.power import FMAX_HZ, battery_life_s

SAMPLES_PER_SECOND = 1.0  # wound sensor sample rate (Table 1: <= 1 Hz)


def synthetic_wound_sensor(rng, hours):
    """4-bit 'wound moisture' trace: quiet, then an excursion."""
    n = int(hours * 3600 * SAMPLES_PER_SECOND)
    base = rng.integers(2, 6, size=n)
    # The wound deteriorates at 60% of the trace: values jump.
    onset = int(0.6 * n)
    base[onset:] += 8
    return np.clip(base, 0, 15).astype(int).tolist()


def main():
    target = Target.named("flexicore4")
    rng = np.random.default_rng(42)
    trace = synthetic_wound_sensor(rng, hours=0.01)  # short demo trace
    print(f"sensor trace: {len(trace)} samples")

    # Stage 1: de-noise with exponential smoothing (IntAvg).
    intavg = get_kernel("intavg")
    result_s, smoothed = intavg.run(target, trace)
    assert smoothed == intavg.expected(trace)

    # Stage 2: sticky thresholding on the smoothed stream.
    thresholding = get_kernel("thresholding")
    result_t, alarms = thresholding.run(target, smoothed)
    assert alarms == thresholding.expected(smoothed)

    first_alarm = alarms.index(1) if 1 in alarms else None
    print(f"first alarm at sample {first_alarm} "
          f"(deterioration began at {int(0.6 * len(trace))})")

    # Energy accounting (Section 5.2): static-power-dominated.
    instructions = result_s.instructions + result_t.instructions
    per_sample = instructions / len(trace)
    seconds_of_compute = per_sample / FMAX_HZ
    from repro.netlist import build_flexicore4
    from repro.tech.power import OperatingPoint, static_power_w

    power = static_power_w(build_flexicore4().pullups,
                           OperatingPoint(vdd=4.5))
    joules_per_sample = power * seconds_of_compute
    daily = joules_per_sample * SAMPLES_PER_SECOND * 86400
    print(f"{per_sample:.0f} instructions/sample -> "
          f"{joules_per_sample * 1e6:.1f} uJ/sample, "
          f"{daily:.2f} J/day (paper's example: 3.6 J/day)")

    life = battery_life_s(
        joules_per_sample * SAMPLES_PER_SECOND,  # mean power, gated
        battery_mah=5.0, battery_v=3.0,
    )
    print(f"on a 3 V, 5 mAh printed battery: {life / 86400:.1f} days "
          f"(paper: about two weeks)")


if __name__ == "__main__":
    main()
