#!/usr/bin/env python3
"""Design-space exploration walkthrough (Section 6).

Sweeps the ISA extensions of Figure 9, then evaluates the six
operand-model x microarchitecture design points of Figures 11-13 and
prints the trade-off frontier -- ending with the paper's conclusion:
which design to build with and without integrated program memory.

Run:  python examples/dse_explorer.py
"""

from repro.dse import DSE_DESIGNS, evaluate_all, feature_sweep
from repro.dse.features import revised_isa_report


def main():
    print("== Step 1: what does each ISA extension cost and buy? ==")
    base, reports = feature_sweep()
    print(f"{'extension':<32} {'core area':>10} {'suite code':>11}")
    for report in reports:
        print(f"{report.label:<32} {report.area_ratio:>9.2f}x "
              f"{report.code_ratio:>10.2f}x")
    revised = revised_isa_report()
    print(f"\nRevised operation set (multiplier and double-memory "
          f"rejected):\n  area x{revised['area_ratio']:.2f}, "
          f"code x{revised['code_ratio']:.2f}")

    print("\n== Step 2: operands and microarchitecture ==")
    wide = evaluate_all()
    narrow = evaluate_all(bus_bits=8)
    base_metrics = wide["FlexiCore4"]
    print(f"{'design':<12} {'area':>6} {'f(kHz)':>8} {'perf':>6} "
          f"{'energy':>7} {'energy(8b bus)':>15}")
    for design in DSE_DESIGNS:
        metrics = wide[design.name]
        perf = 1.0 / metrics.mean_relative(base_metrics, "time_s")
        energy = metrics.mean_relative(base_metrics, "energy_j")
        bus_metrics = narrow[design.name]
        feasible = all(k.feasible for k in bus_metrics.kernels.values())
        bus_energy = (
            f"{bus_metrics.mean_relative(base_metrics, 'energy_j'):.2f}"
            if feasible else "infeasible"
        )
        print(f"{design.name:<12} "
              f"{metrics.nand2_area / base_metrics.nand2_area:>5.2f}x "
              f"{metrics.frequency_hz / 1e3:>8.1f} {perf:>5.2f}x "
              f"{energy:>6.2f}x {bus_energy:>15}")

    print("\n== Conclusion (Section 6.3) ==")
    print("With integrated program memory: build the pipelined "
          "load-store machine (best latency and energy).")
    print("With off-chip program memory over FlexiCore's 8-bit bus: "
          "build the pipelined accumulator machine (16-bit fetches "
          "make single-cycle/pipelined load-store infeasible).")


if __name__ == "__main__":
    main()
