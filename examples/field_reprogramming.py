#!/usr/bin/env python3
"""Field reprogrammability: one chip, many applications.

The paper's central differentiator over PlasticARM and the printed-ROM
designs: "FlexiCores can execute (and modify) programs stored in
off-chip memories.  This enables a single chip to support multiple
applications" (Section 2).  Here the *same* simulated die -- the same
gate-level netlist, i.e. the same silicon -- runs three different
applications back to back just by swapping the external program memory,
and a fourth program streamed through the MMU's 16-page space.

Run:  python examples/field_reprogramming.py
"""

import numpy as np

from repro.kernels.kernel import Target
from repro.kernels.suite import get_kernel
from repro.sim.trace import trace_program


def main():
    target = Target.named("flexicore4")
    rng = np.random.default_rng(1)

    print("One FlexiCore4 die; four programs loaded in the field.\n")

    # Application 1: environmental thresholding.
    thresholding = get_kernel("thresholding")
    samples = [int(rng.integers(0, 16)) for _ in range(8)]
    _, alarms = thresholding.run(target, samples)
    print(f"1. Thresholding  in={samples}  out={alarms}")

    # Application 2: parity for a wireless link.
    parity = get_kernel("parity")
    words = parity.generate_inputs(rng, 4)
    _, parity_bits = parity.run(target, words)
    print(f"2. Parity Check  in={words}  out={parity_bits}")

    # Application 3: a PRNG for a dynamic smart label.
    xorshift = get_kernel("xorshift8")
    _, noise = xorshift.run(target, [0] * 4)
    randoms = [noise[i] | (noise[i + 1] << 4)
               for i in range(0, len(noise), 2)]
    print(f"3. XorShift8     out bytes={[hex(v) for v in randoms]}")

    # Application 4: the multi-page calculator through the MMU.
    calculator = get_kernel("calculator")
    transactions = [2, 7, 6,   # 7 * 6
                    3, 13, 4]  # 13 / 4
    _, results = calculator.run(target, transactions)
    print(f"4. Calculator    7*6 -> lo={results[0]} hi={results[1]} "
          f"(= {results[0] + 16 * results[1]}); "
          f"13/4 -> q={results[2]} r={results[3]}")

    # Peek at the machine: trace the first instructions of application 1.
    print("\nTrace of the first 10 instructions of Thresholding:")
    program = thresholding.program(target)
    tracer, _ = trace_program(program, isa=target.isa,
                              inputs=samples, max_cycles=10)
    print(tracer.text(count=10))


if __name__ == "__main__":
    main()
