#!/usr/bin/env python3
"""Quickstart: assemble a FlexiCore4 program, run it, read the outputs.

This is the 'hello world' of the reproduction: a field-reprogrammable
4-bit core reading its input bus, computing, and driving its output bus
-- exactly the loop a flexible smart label would run.

Run:  python examples/quickstart.py
"""

from repro.asm import assemble
from repro.isa import get_isa
from repro.sim import run_program

# The base FlexiCore4 ISA of Figure 2a: nine instructions, 4-bit
# accumulator, eight data words with IPORT/OPORT mapped at 0 and 1.
isa = get_isa("flexicore4")

SOURCE = """
; Echo each input sample incremented by 3, forever.
loop:
    load 0          ; acc <- IPORT (memory-mapped input bus)
    addi 3
    store 1         ; OPORT <- acc (memory-mapped output bus)
    nandi 0         ; acc <- 0xF: guaranteed negative...
    brn loop        ; ...so this branch always loops
"""


def main():
    program = assemble(SOURCE, isa)
    print(f"assembled {program.static_instructions} instructions "
          f"({program.size_bytes} bytes):")
    print(program.text())

    samples = [0, 1, 5, 12, 15]
    result, sink = run_program(program, inputs=samples)
    print(f"\ninputs : {samples}")
    print(f"outputs: {sink.values}")
    print(f"ran {result.instructions} instructions "
          f"({result.reason})")

    # At the chips' 12.5 kHz and ~360 nJ/instruction (Section 5.2):
    from repro.tech.power import FMAX_HZ, NJ_PER_INSTRUCTION

    time_ms = result.instructions / FMAX_HZ * 1e3
    energy_uj = result.instructions * NJ_PER_INSTRUCTION * 1e-3
    print(f"on silicon this takes ~{time_ms:.2f} ms "
          f"and ~{energy_uj:.1f} uJ")


if __name__ == "__main__":
    main()
